#include "stp/matrix.hpp"

#include <gtest/gtest.h>

#include "stp/logic_matrix.hpp"
#include "util/rng.hpp"

namespace {

using stpes::stp::logic_matrix;
using stpes::stp::matrix;
using stpes::tt::truth_table;

matrix random_matrix(std::size_t rows, std::size_t cols,
                     stpes::util::rng& rng) {
  matrix m{rows, cols};
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<int>(rng.next_below(3));
    }
  }
  return m;
}

TEST(StpMatrix, IdentityMultiplication) {
  stpes::util::rng rng{1};
  const auto m = random_matrix(3, 5, rng);
  EXPECT_EQ(matrix::identity(3).multiply(m), m);
  EXPECT_EQ(m.multiply(matrix::identity(5)), m);
}

TEST(StpMatrix, KroneckerDimensionsAndValues) {
  const matrix a{{1, 2}, {3, 4}};
  const matrix b{{0, 1}, {1, 0}};
  const auto k = a.kronecker(b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  // Top-left 2x2 block is 1 * b.
  EXPECT_EQ(k.at(0, 0), 0);
  EXPECT_EQ(k.at(0, 1), 1);
  // Top-right block is 2 * b.
  EXPECT_EQ(k.at(0, 2), 0);
  EXPECT_EQ(k.at(0, 3), 2);
  // Bottom-right block is 4 * b.
  EXPECT_EQ(k.at(3, 2), 4);
  EXPECT_EQ(k.at(3, 3), 0);
}

TEST(StpMatrix, KroneckerMixedProductProperty) {
  // (A (x) B)(C (x) D) == (AC) (x) (BD).
  stpes::util::rng rng{2};
  const auto a = random_matrix(2, 3, rng);
  const auto b = random_matrix(2, 2, rng);
  const auto c = random_matrix(3, 2, rng);
  const auto d = random_matrix(2, 3, rng);
  EXPECT_EQ(a.kronecker(b).multiply(c.kronecker(d)),
            a.multiply(c).kronecker(b.multiply(d)));
}

TEST(StpMatrix, StpEqualsOrdinaryProductWhenDimensionsMatch) {
  stpes::util::rng rng{3};
  const auto a = random_matrix(2, 4, rng);
  const auto b = random_matrix(4, 3, rng);
  EXPECT_EQ(a.stp(b), a.multiply(b));
}

TEST(StpMatrix, StpDefinitionDimensions) {
  // X in M^{2x4}, Y in M^{2x2}: t = lcm(4, 2) = 4, so the product is
  // X * (Y (x) I_2) with shape 2 x 4.
  stpes::util::rng rng{4};
  const auto x = random_matrix(2, 4, rng);
  const auto y = random_matrix(2, 2, rng);
  const auto product = x.stp(y);
  EXPECT_EQ(product.rows(), 2u);
  EXPECT_EQ(product.cols(), 4u);
  // Against the definition directly.
  EXPECT_EQ(product, x.multiply(y.kronecker(matrix::identity(2))));
}

TEST(StpMatrix, StpIsAssociative) {
  stpes::util::rng rng{5};
  const auto a = random_matrix(2, 4, rng);
  const auto b = random_matrix(2, 2, rng);
  const auto c = random_matrix(2, 2, rng);
  EXPECT_EQ(a.stp(b).stp(c), a.stp(b.stp(c)));
}

TEST(StpMatrix, Property1RowVectorSwap) {
  // X |x Z_r == Z_r |x (I_t (x) X) for a row vector Z_r in M^{1xt}.
  stpes::util::rng rng{6};
  const auto x = random_matrix(2, 2, rng);
  matrix z{1, 4};
  for (std::size_t c = 0; c < 4; ++c) {
    z.at(0, c) = static_cast<int>(rng.next_below(3));
  }
  const auto lhs = x.stp(z);
  const auto rhs = z.stp(matrix::identity(4).kronecker(x));
  EXPECT_EQ(lhs, rhs);
}

TEST(StpMatrix, Property1ColumnVectorSwap) {
  // Z_c |x X == (I_t (x) X) |x Z_c for a column vector Z_c in M^{tx1}.
  stpes::util::rng rng{7};
  const auto x = random_matrix(2, 2, rng);
  matrix z{4, 1};
  for (std::size_t r = 0; r < 4; ++r) {
    z.at(r, 0) = static_cast<int>(rng.next_below(3));
  }
  const auto lhs = z.stp(x);
  const auto rhs = matrix::identity(4).kronecker(x).stp(z);
  EXPECT_EQ(lhs, rhs);
}

TEST(StpMatrix, SwapMatrixExchangesKroneckerFactors) {
  stpes::util::rng rng{8};
  for (const auto& [m, n] : {std::pair<std::size_t, std::size_t>{2, 2},
                            {2, 4},
                            {3, 2},
                            {4, 4}}) {
    matrix x{m, 1};
    matrix y{n, 1};
    for (std::size_t r = 0; r < m; ++r) {
      x.at(r, 0) = static_cast<int>(rng.next_below(5));
    }
    for (std::size_t r = 0; r < n; ++r) {
      y.at(r, 0) = static_cast<int>(rng.next_below(5));
    }
    EXPECT_EQ(matrix::swap_matrix(m, n).multiply(x.kronecker(y)),
              y.kronecker(x));
  }
}

TEST(StpMatrix, PowerReducingMatrixEq3) {
  // M_r x == x (x) x for Boolean x (Example 3).
  for (const auto& x : {matrix::boolean_true(), matrix::boolean_false()}) {
    EXPECT_EQ(matrix::power_reducing().multiply(x), x.kronecker(x));
  }
  // Literal layout of eq. (3).
  const matrix expected{{1, 0}, {0, 0}, {0, 0}, {0, 1}};
  EXPECT_EQ(matrix::power_reducing(), expected);
}

TEST(StpMatrix, VariableSwapMatrixEq4) {
  const matrix expected{
      {1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
  EXPECT_EQ(matrix::variable_swap(), expected);
  // M_w (b |x a) == a |x b (Example 3).
  const auto a = matrix::boolean_true();
  const auto b = matrix::boolean_false();
  EXPECT_EQ(matrix::variable_swap().multiply(b.kronecker(a)),
            a.kronecker(b));
}

TEST(StpMatrix, Example2ImplicationIdentity) {
  // M_d * M_n == M_i (the proof of a -> b == !a | b in Example 2).
  const auto m_d = logic_matrix::binary_op(0xE).to_matrix();  // disjunction
  const auto m_n = logic_matrix::negation().to_matrix();
  const auto m_i = logic_matrix::binary_op(0xD).to_matrix();  // implication
  EXPECT_EQ(m_d.stp(m_n), m_i);
}

TEST(StpMatrix, StructuralMatricesMatchPaper) {
  // M_c (conjunction), M_d (disjunction), M_i (implication), M_e (equiv).
  const matrix m_c{{1, 0, 0, 0}, {0, 1, 1, 1}};
  const matrix m_d{{1, 1, 1, 0}, {0, 0, 0, 1}};
  const matrix m_i{{1, 0, 1, 1}, {0, 1, 0, 0}};
  const matrix m_e{{1, 0, 0, 1}, {0, 1, 1, 0}};
  EXPECT_EQ(logic_matrix::binary_op(0x8).to_matrix(), m_c);
  EXPECT_EQ(logic_matrix::binary_op(0xE).to_matrix(), m_d);
  EXPECT_EQ(logic_matrix::binary_op(0xD).to_matrix(), m_i);
  EXPECT_EQ(logic_matrix::binary_op(0x9).to_matrix(), m_e);
}

TEST(StpMatrix, StpChainProduct) {
  const auto m_n = logic_matrix::negation().to_matrix();
  const auto chain = stpes::stp::stp_chain({m_n, m_n, m_n});
  EXPECT_EQ(chain, m_n);
}

TEST(LogicMatrix, TruthTableRoundTrip) {
  stpes::util::rng rng{9};
  for (unsigned n = 0; n <= 6; ++n) {
    truth_table f{n};
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      f.set_bit(t, rng.next_bool());
    }
    const auto m = logic_matrix::from_truth_table(f);
    EXPECT_EQ(m.num_vars(), n);
    EXPECT_EQ(m.to_truth_table(), f);
  }
}

TEST(LogicMatrix, OperatorApplicationAgreesWithStp) {
  // For every binary op: M_op |x a |x b == column of (a op b).
  for (unsigned op = 0; op < 16; ++op) {
    const auto m_op = logic_matrix::binary_op(op).to_matrix();
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        const auto va = a ? matrix::boolean_true() : matrix::boolean_false();
        const auto vb = b ? matrix::boolean_true() : matrix::boolean_false();
        const auto out = m_op.stp(va).stp(vb);
        const bool expected = ((op >> ((b << 1) | a)) & 1) != 0;
        EXPECT_EQ(out,
                  expected ? matrix::boolean_true() : matrix::boolean_false())
            << "op " << op << " a " << a << " b " << b;
      }
    }
  }
}

TEST(LogicMatrix, SplitQuartering) {
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto m = logic_matrix::from_truth_table(f);
  const auto quarters = m.split(4);
  ASSERT_EQ(quarters.size(), 4u);
  for (const auto& q : quarters) {
    EXPECT_EQ(q.num_vars(), 2u);
  }
  // Reassembling the quarters gives back the original top row.
  for (std::uint64_t c = 0; c < m.num_cols(); ++c) {
    EXPECT_EQ(m.column_is_true(c), quarters[c / 4].column_is_true(c % 4));
  }
}

TEST(LogicMatrix, ComplementFlipsRows) {
  const auto f = truth_table::from_hex(3, "0xe8");
  const auto m = logic_matrix::from_truth_table(f);
  EXPECT_EQ(m.complement().to_truth_table(), ~f);
}

TEST(LogicMatrix, FromMatrixValidates) {
  matrix bad{2, 4};
  bad.at(0, 0) = 1;
  bad.at(1, 0) = 1;  // column [1,1] is not in S_V
  EXPECT_THROW(logic_matrix::from_matrix(bad), std::invalid_argument);
  matrix good{2, 2};
  good.at(0, 0) = 1;
  good.at(1, 0) = 0;
  good.at(0, 1) = 0;
  good.at(1, 1) = 1;
  EXPECT_EQ(logic_matrix::from_matrix(good).num_vars(), 1u);
}

TEST(LogicMatrix, TrueColumnsMatchOnSet) {
  const auto f = truth_table::from_hex(3, "0xe8");
  const auto m = logic_matrix::from_truth_table(f);
  EXPECT_EQ(m.true_columns().size(), f.count_ones());
}

}  // namespace
