#include <gtest/gtest.h>

#include "allsat/circuit_allsat.hpp"
#include "core/exact_synthesis.hpp"
#include "synth/bms.hpp"
#include "synth/cegar.hpp"
#include "synth/fen.hpp"
#include "synth/stp_synth.hpp"
#include "tt/npn.hpp"
#include "util/rng.hpp"
#include "workload/collections.hpp"

namespace {

using stpes::core::engine;
using stpes::core::exact_synthesis;
using stpes::synth::result;
using stpes::synth::spec;
using stpes::synth::status;
using stpes::tt::truth_table;

constexpr engine kAllEngines[] = {engine::stp, engine::bms, engine::fen,
                                  engine::cegar, engine::portfolio};

void expect_all_engines_agree(const truth_table& f, double timeout = 60.0) {
  result reference;
  bool have_reference = false;
  for (const auto e : kAllEngines) {
    const auto r = exact_synthesis(f, e, timeout);
    ASSERT_EQ(r.outcome, status::success)
        << stpes::core::to_string(e) << " on " << f.to_hex();
    for (const auto& c : r.chains) {
      EXPECT_EQ(c.simulate(), f)
          << stpes::core::to_string(e) << " chain:\n" << c.to_string();
      EXPECT_EQ(c.size(), r.optimum_gates);
    }
    if (have_reference) {
      EXPECT_EQ(r.optimum_gates, reference.optimum_gates)
          << stpes::core::to_string(e) << " on " << f.to_hex();
    } else {
      reference = r;
      have_reference = true;
    }
  }
}

TEST(Synthesis, PaperRunningExample) {
  // 0x8ff8 needs exactly three 2-LUT steps (Example 7).
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto r = exact_synthesis(f, engine::stp);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 3u);
  // The paper reports two solution sets for the Fig. 3(a) DAG; they are
  // polarity variants of one another, so under polarity normalization the
  // engine returns exactly the normal representative — Example 7's first
  // solution: OR on top of AND(a,b) and XOR(c,d).
  ASSERT_EQ(r.chains.size(), 1u);
  const auto& c = r.chains.front();
  unsigned and_steps = 0;
  unsigned xor_steps = 0;
  unsigned or_steps = 0;
  for (const auto& st : c.steps()) {
    and_steps += st.op == 0x8;
    xor_steps += st.op == 0x6;
    or_steps += st.op == 0xE;
  }
  EXPECT_EQ(and_steps, 1u);
  EXPECT_EQ(xor_steps, 1u);
  EXPECT_EQ(or_steps, 1u);
}

TEST(Synthesis, KnownOptima) {
  // AND2: 1 gate; XOR2: 1 gate; MAJ3: 4 gates with 2-input operators;
  // 3-input XOR: 2 gates; AND4: 3 gates.
  const auto and2 = truth_table(2, 0x8);
  EXPECT_EQ(exact_synthesis(and2, engine::stp).optimum_gates, 1u);
  const auto xor2 = truth_table(2, 0x6);
  EXPECT_EQ(exact_synthesis(xor2, engine::stp).optimum_gates, 1u);
  const auto maj3 = truth_table::from_hex(3, "0xe8");
  EXPECT_EQ(exact_synthesis(maj3, engine::stp).optimum_gates, 4u);
  auto xor3 = truth_table::nth_var(3, 0) ^ truth_table::nth_var(3, 1) ^
              truth_table::nth_var(3, 2);
  EXPECT_EQ(exact_synthesis(xor3, engine::stp).optimum_gates, 2u);
  auto and4 = truth_table::constant(4, true);
  for (unsigned v = 0; v < 4; ++v) {
    and4 &= truth_table::nth_var(4, v);
  }
  EXPECT_EQ(exact_synthesis(and4, engine::stp).optimum_gates, 3u);
}

TEST(Synthesis, DegenerateTargets) {
  for (const auto e : kAllEngines) {
    const auto literal = exact_synthesis(~truth_table::nth_var(3, 1), e);
    ASSERT_TRUE(literal.ok());
    EXPECT_EQ(literal.optimum_gates, 0u);
    EXPECT_EQ(literal.best().simulate(), ~truth_table::nth_var(3, 1));

    const auto constant = exact_synthesis(truth_table::constant(2, false), e);
    ASSERT_TRUE(constant.ok());
    EXPECT_TRUE(constant.best().simulate().is_const0());
  }
}

TEST(Synthesis, FunctionsWithPartialSupportAreLifted) {
  // A function of {x1, x3} inside a 4-input space.
  const auto f = truth_table::nth_var(4, 1) ^ truth_table::nth_var(4, 3);
  for (const auto e : kAllEngines) {
    const auto r = exact_synthesis(f, e);
    ASSERT_TRUE(r.ok()) << stpes::core::to_string(e);
    EXPECT_EQ(r.optimum_gates, 1u);
    EXPECT_EQ(r.best().simulate(), f);
    EXPECT_EQ(r.best().num_inputs(), 4u);
  }
}

TEST(Synthesis, AllNpn3ClassesAgreeAcrossEngines) {
  for (const auto& f : stpes::tt::enumerate_npn_classes(3)) {
    expect_all_engines_agree(f);
  }
}

TEST(Synthesis, RandomFourInputFunctionsAgreeAcrossEngines) {
  stpes::util::rng rng{4242};
  int tested = 0;
  while (tested < 6) {
    truth_table f{4, rng.next_u64() & 0xFFFF};
    // Keep the cross-check quick: skip the very hardest functions.
    const auto probe = exact_synthesis(f, engine::cegar, 20.0);
    if (!probe.ok() || probe.optimum_gates > 5) {
      continue;
    }
    expect_all_engines_agree(f);
    ++tested;
  }
}

TEST(Synthesis, StpReturnsAllNormalChainsVerified) {
  const auto f = truth_table::from_hex(4, "0xe8e8");  // MAJ3 on 4 inputs
  stpes::synth::stp_engine eng;
  spec s;
  s.function = f;
  const auto r = eng.run(s);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.chains.size(), 1u);
  for (const auto& c : r.chains) {
    EXPECT_EQ(c.simulate(), f);
    EXPECT_TRUE(stpes::allsat::verify_chain(c, f));
    EXPECT_EQ(c.size(), r.optimum_gates);
  }
  // Solutions are pairwise distinct.
  for (std::size_t i = 0; i < r.chains.size(); ++i) {
    for (std::size_t j = i + 1; j < r.chains.size(); ++j) {
      EXPECT_FALSE(r.chains[i] == r.chains[j]);
    }
  }
}

TEST(Synthesis, MaxSolutionsCap) {
  stpes::synth::stp_options options;
  options.max_solutions = 3;
  stpes::synth::stp_engine eng{options};
  spec s;
  s.function = truth_table::from_hex(4, "0xe8e8");
  const auto r = eng.run(s);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.chains.size(), 3u);
}

TEST(Synthesis, TimeoutIsReported) {
  spec s;
  s.function = truth_table::from_hex(4, "0x1ee1") ^
               truth_table::nth_var(4, 0);  // arbitrary non-trivial target
  for (const auto e : kAllEngines) {
    stpes::core::run_context ctx{1e-9};
    s.ctx = &ctx;
    const auto r = exact_synthesis(s, e);
    EXPECT_EQ(r.outcome, status::timeout) << stpes::core::to_string(e);
  }
}

TEST(Synthesis, DeadlineCutLevelReportsPartialSuccess) {
  // The hard NPN4 classes find their first optimum chains in well under a
  // second (the reverse DAG sweep surfaces them early) but need minutes to
  // exhaust the winning level.  Under a budget between those two times the
  // engine must report success with `enumeration_complete == false`: the
  // optimum size is proven (all smaller levels were exhausted) while the
  // chain set is possibly partial.  Every reported chain must still be a
  // verified realization at the claimed optimum size.
  const auto functions = stpes::workload::npn4_classes();
  for (std::size_t i = 0; i < functions.size(); i += 8) {
    stpes::core::run_context ctx{2.5};
    spec s;
    s.function = functions[i];
    s.ctx = &ctx;
    const auto r = exact_synthesis(s, engine::stp);
    if (r.outcome != status::success || r.enumeration_complete) {
      continue;
    }
    ASSERT_FALSE(r.chains.empty());
    for (const auto& c : r.chains) {
      EXPECT_EQ(c.simulate(), s.function);
      EXPECT_EQ(c.size(), r.optimum_gates);
    }
    return;
  }
  FAIL() << "no class produced a deadline-cut partial success";
}

TEST(Synthesis, CompleteRunsReportCompleteEnumeration) {
  // Without a deadline the sweep always finishes, so the flag must stay
  // true — including under a solution cap, which truncates deliberately
  // rather than by wall clock.
  spec s;
  s.function = truth_table::from_hex(4, "0xe8e8");
  const auto full = exact_synthesis(s, engine::stp);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full.enumeration_complete);

  stpes::synth::stp_options options;
  options.max_solutions = 1;
  stpes::synth::stp_engine eng{options};
  const auto capped = eng.run(s);
  ASSERT_TRUE(capped.ok());
  EXPECT_TRUE(capped.enumeration_complete);
}

TEST(Synthesis, TreeOnlyAblationStillFindsTreeOptima) {
  stpes::synth::stp_options options;
  options.allow_shared_gates = false;
  stpes::synth::stp_engine eng{options};
  spec s;
  s.function = truth_table::from_hex(4, "0x8ff8");
  const auto r = eng.run(s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 3u);
}

TEST(Synthesis, UnprunedFencesAblationAgrees) {
  stpes::synth::stp_options options;
  options.use_fence_pruning = false;
  stpes::synth::stp_engine eng{options};
  spec s;
  s.function = truth_table::from_hex(3, "0x96");  // XOR3
  const auto r = eng.run(s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 2u);
}

TEST(Synthesis, EngineNamesRoundTrip) {
  using stpes::core::engine_from_string;
  EXPECT_EQ(engine_from_string("stp"), engine::stp);
  EXPECT_EQ(engine_from_string("BMS"), engine::bms);
  EXPECT_EQ(engine_from_string("fen"), engine::fen);
  EXPECT_EQ(engine_from_string("abc"), engine::cegar);
  EXPECT_EQ(engine_from_string("portfolio"), engine::portfolio);
  EXPECT_THROW(engine_from_string("nope"), std::invalid_argument);
  for (const auto e : kAllEngines) {
    EXPECT_EQ(engine_from_string(stpes::core::to_string(e)), e);
  }
}

}  // namespace
