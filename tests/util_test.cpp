#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

namespace {

using stpes::util::rng;
using stpes::util::stopwatch;
using stpes::util::table_printer;
using stpes::util::time_budget;

TEST(Rng, DeterministicForEqualSeeds) {
  rng a{123};
  rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a{1};
  rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestartsSequence) {
  rng a{9};
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(9);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  rng r{7};
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  rng r{11};
  std::array<int, 5> histogram{};
  for (int i = 0; i < 5000; ++i) {
    ++histogram[r.next_below(5)];
  }
  for (const int count : histogram) {
    EXPECT_GT(count, 800);  // roughly uniform
    EXPECT_LT(count, 1200);
  }
}

TEST(Rng, NextInInclusiveRange) {
  rng r{13};
  for (int i = 0; i < 200; ++i) {
    const auto v = r.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, BernoulliExtremes) {
  rng r{17};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bernoulli(0, 10));
    EXPECT_TRUE(r.next_bernoulli(10, 10));
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(w.elapsed_seconds(), 0.009);
  EXPECT_GE(w.elapsed_us(), 9000);
  w.restart();
  EXPECT_LT(w.elapsed_seconds(), 0.5);
}

TEST(TimeBudget, UnlimitedByDefault) {
  const time_budget b;
  EXPECT_FALSE(b.limited());
  EXPECT_FALSE(b.expired());
  EXPECT_GT(b.remaining_seconds(), 1e12);
}

TEST(TimeBudget, NonPositiveMeansUnlimited) {
  EXPECT_FALSE(time_budget{0.0}.limited());
  EXPECT_FALSE(time_budget{-1.0}.limited());
}

TEST(TimeBudget, ExpiresAfterDeadline) {
  const time_budget b{0.005};
  EXPECT_TRUE(b.limited());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(b.expired());
  EXPECT_LE(b.remaining_seconds(), 0.0);
}

TEST(TablePrinter, AlignsColumns) {
  table_printer t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream out;
  t.print(out);
  const auto text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinter, PadsShortRows) {
  table_printer t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

TEST(TablePrinter, FormatsDoubles) {
  EXPECT_EQ(table_printer::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(table_printer::fmt(2.0, 1), "2.0");
  EXPECT_EQ(table_printer::fmt(0.0005, 3), "0.001");
}

}  // namespace
