#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <vector>

#include "util/flat_set64.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

namespace {

using stpes::util::rng;
using stpes::util::stopwatch;
using stpes::util::table_printer;
using stpes::util::time_budget;

TEST(Rng, DeterministicForEqualSeeds) {
  rng a{123};
  rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a{1};
  rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestartsSequence) {
  rng a{9};
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(9);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  rng r{7};
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  rng r{11};
  std::array<int, 5> histogram{};
  for (int i = 0; i < 5000; ++i) {
    ++histogram[r.next_below(5)];
  }
  for (const int count : histogram) {
    EXPECT_GT(count, 800);  // roughly uniform
    EXPECT_LT(count, 1200);
  }
}

TEST(Rng, NextInInclusiveRange) {
  rng r{13};
  for (int i = 0; i < 200; ++i) {
    const auto v = r.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, BernoulliExtremes) {
  rng r{17};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bernoulli(0, 10));
    EXPECT_TRUE(r.next_bernoulli(10, 10));
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(w.elapsed_seconds(), 0.009);
  EXPECT_GE(w.elapsed_us(), 9000);
  w.restart();
  EXPECT_LT(w.elapsed_seconds(), 0.5);
}

TEST(TimeBudget, UnlimitedByDefault) {
  const time_budget b;
  EXPECT_FALSE(b.limited());
  EXPECT_FALSE(b.expired());
  EXPECT_GT(b.remaining_seconds(), 1e12);
}

TEST(TimeBudget, NonPositiveMeansUnlimited) {
  EXPECT_FALSE(time_budget{0.0}.limited());
  EXPECT_FALSE(time_budget{-1.0}.limited());
}

TEST(TimeBudget, ExpiresAfterDeadline) {
  const time_budget b{0.005};
  EXPECT_TRUE(b.limited());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(b.expired());
  EXPECT_LE(b.remaining_seconds(), 0.0);
}

TEST(TablePrinter, AlignsColumns) {
  table_printer t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream out;
  t.print(out);
  const auto text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinter, PadsShortRows) {
  table_printer t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

TEST(TablePrinter, FormatsDoubles) {
  EXPECT_EQ(table_printer::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(table_printer::fmt(2.0, 1), "2.0");
  EXPECT_EQ(table_printer::fmt(0.0005, 3), "0.001");
}

TEST(FlatSet64, InsertContainsAndDuplicates) {
  stpes::util::flat_set64 set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(42));
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));
  EXPECT_TRUE(set.contains(42));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatSet64, ZeroKeyIsAFirstClassMember) {
  // 0 doubles as the empty-slot sentinel internally; the side flag must
  // make it behave like any other key.
  stpes::util::flat_set64 set;
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.size(), 1u);
  std::size_t visited = 0;
  set.for_each([&](std::uint64_t k) {
    EXPECT_EQ(k, 0u);
    ++visited;
  });
  EXPECT_EQ(visited, 1u);
  set.clear();
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.empty());
}

TEST(FlatSet64, AgreesWithUnorderedSetUnderRandomLoad) {
  stpes::util::rng rng{2026};
  stpes::util::flat_set64 set;
  std::unordered_set<std::uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    // Small key range forces plenty of duplicates and probe collisions.
    const std::uint64_t key = rng.next_u64() % 8192;
    EXPECT_EQ(set.insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (std::uint64_t key = 0; key < 8192; ++key) {
    EXPECT_EQ(set.contains(key), reference.count(key) != 0) << key;
  }
  std::size_t visited = 0;
  set.for_each([&](std::uint64_t key) {
    EXPECT_EQ(reference.count(key), 1u);
    ++visited;
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatSet64, IterationOrderIsReproducible) {
  // The thread-merge in the synthesis engine relies on this: replaying
  // the same insertion sequence yields the same visit order.  (With
  // linear probing the slot layout is a function of the insertion
  // *sequence*, not just the key set — the capped merge depends on the
  // per-table replay being deterministic, which this pins down.)
  stpes::util::rng rng{7};
  std::vector<std::uint64_t> keys(500);
  for (auto& k : keys) {
    k = rng.next_u64();
  }
  stpes::util::flat_set64 first;
  stpes::util::flat_set64 second;
  for (const auto k : keys) {
    first.insert(k);
    second.insert(k);
  }
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  first.for_each([&](std::uint64_t k) { a.push_back(k); });
  second.for_each([&](std::uint64_t k) { b.push_back(k); });
  EXPECT_EQ(a, b);
}

}  // namespace
