/// \file resilient_client_test.cpp
/// \brief Retry, backoff, reconnect, and reply-parsing edge cases.
///
/// Two kinds of harness: a `scripted_server` (a real TCP listener that
/// answers each request with pre-canned bytes, so truncation, BUSY storms,
/// and mid-reply hangups are exact), and real daemons for the end-to-end
/// reconnect-after-restart criterion.  The backoff schedule is asserted
/// value for value — it is a pure function of the policy seed, which is
/// the whole point of deterministic jitter.

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/fd_stream.hpp"
#include "server/resilient_client.hpp"
#include "server/server.hpp"
#include "server/tcp_socket_server.hpp"
#include "tt/truth_table.hpp"
#include "util/failpoint.hpp"

namespace {

using stpes::core::engine;
using stpes::server::endpoint;
using stpes::server::line_client;
using stpes::server::resilient_client;
using stpes::server::retry_policy;
using stpes::server::server_options;
using stpes::server::synthesis_server;
using stpes::server::tcp_listen_spec;
using stpes::server::tcp_socket_server;
using stpes::server::transport_error;
using stpes::tt::truth_table;

/// A TCP listener that serves pre-scripted replies: connection `i` uses
/// `scripts[i]`; each element is the raw bytes answering one request line
/// (empty string = hang up without replying).  The accept loop exits once
/// every script is spent, so the destructor's join is bounded.
class scripted_server {
public:
  explicit scripted_server(std::vector<std::vector<std::string>> scripts)
      : scripts_(std::move(scripts)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_OR_THROW(listen_fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_OR_THROW(::bind(listen_fd_,
                           reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0);
    ASSERT_OR_THROW(::listen(listen_fd_, 8) == 0);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ASSERT_OR_THROW(::getsockname(listen_fd_,
                                  reinterpret_cast<sockaddr*>(&bound),
                                  &len) == 0);
    port_ = ntohs(bound.sin_port);
    thread_ = std::thread{[this] { loop(); }};
  }

  ~scripted_server() {
    thread_.join();
    ::close(listen_fd_);
  }

  [[nodiscard]] endpoint ep() const {
    endpoint e;
    e.transport = endpoint::kind::tcp;
    e.host_or_path = "127.0.0.1";
    e.port = port_;
    return e;
  }

private:
  static void ASSERT_OR_THROW(bool ok) {
    if (!ok) {
      throw std::runtime_error{"scripted_server setup failed"};
    }
  }

  void loop() {
    for (const auto& script : scripts_) {
      pollfd p{listen_fd_, POLLIN, 0};
      if (::poll(&p, 1, 10000) <= 0) {
        return;  // the test never connected; don't hang the join
      }
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        return;
      }
      stpes::server::fd_iostream io{fd};
      std::string line;
      for (const auto& reply : script) {
        if (!std::getline(io, line)) {
          break;
        }
        if (reply.empty()) {
          break;  // scripted hangup
        }
        io << reply;
        io.flush();
      }
      ::close(fd);
    }
  }

  std::vector<std::vector<std::string>> scripts_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

class ResilientClient : public ::testing::Test {
protected:
  void SetUp() override { std::signal(SIGPIPE, SIG_IGN); }
};

retry_policy quick_policy() {
  retry_policy p;
  p.max_attempts = 3;
  p.connect_timeout_ms = 1000;
  p.io_timeout_ms = 2000;
  p.base_backoff_ms = 1;
  p.max_backoff_ms = 8;
  return p;
}

TEST_F(ResilientClient, EndpointSpecsParse) {
  auto ep = endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(ep.transport, endpoint::kind::unix_socket);
  EXPECT_EQ(ep.host_or_path, "/tmp/x.sock");

  ep = endpoint::parse("/tmp/y.sock");
  EXPECT_EQ(ep.transport, endpoint::kind::unix_socket);

  ep = endpoint::parse("./rel.sock");
  EXPECT_EQ(ep.transport, endpoint::kind::unix_socket);

  ep = endpoint::parse("127.0.0.1:9100");
  EXPECT_EQ(ep.transport, endpoint::kind::tcp);
  EXPECT_EQ(ep.host_or_path, "127.0.0.1");
  EXPECT_EQ(ep.port, 9100);
  EXPECT_EQ(ep.to_string(), "127.0.0.1:9100");

  EXPECT_THROW(endpoint::parse("host:0"), std::runtime_error);
  EXPECT_THROW(endpoint::parse("host:66000"), std::runtime_error);
  EXPECT_THROW(endpoint::parse("host:12x"), std::runtime_error);
}

TEST_F(ResilientClient, BackoffScheduleIsDeterministicCappedAndJittered) {
  retry_policy policy;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 200;
  policy.jitter_seed = 42;
  endpoint ep;
  ep.host_or_path = "/nonexistent";
  resilient_client a{ep, policy};
  resilient_client b{ep, policy};
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    const unsigned ms = a.backoff_ms(attempt);
    // Identical policy => identical schedule, run to run and client to
    // client: the jitter is seeded, not sampled.
    EXPECT_EQ(ms, b.backoff_ms(attempt)) << "attempt " << attempt;
    // Exponential base, capped, jitter adds at most 50%.
    const std::uint64_t base =
        std::min<std::uint64_t>(std::uint64_t{10} << std::min(attempt, 16u),
                                200);
    EXPECT_GE(ms, base) << "attempt " << attempt;
    EXPECT_LE(ms, base + base / 2) << "attempt " << attempt;
  }
  // A different seed gives a different schedule somewhere (that is the
  // anti-thundering-herd property).
  policy.jitter_seed = 43;
  resilient_client c{ep, policy};
  bool any_diff = false;
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    any_diff |= c.backoff_ms(attempt) != a.backoff_ms(attempt);
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(ResilientClient, BusyRetryAfterActsAsBackoffFloor) {
  scripted_server server{{{"BUSY retry-after 80\n", "OK pong\n"}}};
  resilient_client client{server.ep(), quick_policy()};
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(client.ping());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // The schedule says ~1 ms; the daemon said 80 — the daemon wins.
  EXPECT_GE(elapsed.count(), 80);
  EXPECT_EQ(client.metrics().busy_backoffs, 1u);
  EXPECT_GE(client.metrics().backoff_ms_total, 80u);
}

TEST_F(ResilientClient, BusyThatSurvivesAllRetriesIsReturnedNotThrown) {
  scripted_server server{
      {{"BUSY retry-after 1\n", "BUSY retry-after 1\n",
        "BUSY retry-after 1\n"}}};
  resilient_client client{server.ep(), quick_policy()};
  const auto reply = client.forward_synth("SYNTH stp 2 8");
  EXPECT_TRUE(reply.busy);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.retry_after_ms, 1u);
  EXPECT_EQ(client.metrics().failures, 0u)
      << "shedding is an answer, not a fault";
}

TEST_F(ResilientClient, ReconnectsAfterMidRequestHangup) {
  // Connection 1 hangs up instead of replying; connection 2 answers.
  scripted_server server{{{""}, {"OK pong\n"}}};
  resilient_client client{server.ep(), quick_policy()};
  EXPECT_TRUE(client.ping());
  EXPECT_EQ(client.metrics().connects, 1u);
  EXPECT_EQ(client.metrics().reconnects, 1u);
  EXPECT_EQ(client.metrics().retries, 1u);
}

TEST_F(ResilientClient, TruncatedReplyPayloadIsRetriedToSuccess) {
  // Connection 1 sends the OK head claiming one chain line, then hangs up
  // mid-payload; connection 2 delivers a complete (zero-chain) reply.
  scripted_server server{{{"OK success 2 1 0.001 id=7\n"},
                          {"OK success 0 0 0.001 id=7\n"}}};
  resilient_client client{server.ep(), quick_policy()};
  const auto reply = client.forward_synth("SYNTH stp 2 8");
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.request_id, 7u);
  EXPECT_EQ(client.metrics().retries, 1u);
  EXPECT_EQ(client.metrics().reconnects, 1u);
}

TEST_F(ResilientClient, ExhaustedRetriesSurfaceTransportError) {
  // Find a port with nothing behind it: bind, read it back, close.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  ::close(probe);

  endpoint ep;
  ep.transport = endpoint::kind::tcp;
  ep.host_or_path = "127.0.0.1";
  ep.port = ntohs(addr.sin_port);
  resilient_client client{ep, quick_policy()};
  EXPECT_THROW(client.forward_synth("SYNTH stp 2 8"), transport_error);
  EXPECT_EQ(client.metrics().failures, 1u);
  EXPECT_EQ(client.metrics().retries, 2u);  // 3 attempts = 2 retries
}

// The acceptance criterion: a daemon restart is an incident the client
// rides out with backoff + reconnect, not an error the caller sees.
TEST_F(ResilientClient, RecoversAcrossDaemonRestart) {
  server_options opts;
  opts.default_timeout_seconds = 60.0;
  opts.num_threads = 2;
  opts.drain_grace_seconds = 0.1;

  auto daemon = std::make_unique<synthesis_server>(opts);
  auto listener = std::make_unique<tcp_socket_server>(
      *daemon, tcp_listen_spec{"127.0.0.1", 0});
  const std::uint16_t port = listener->port();
  std::thread accept_thread{[&listener] { listener->run(); }};

  endpoint ep;
  ep.transport = endpoint::kind::tcp;
  ep.host_or_path = "127.0.0.1";
  ep.port = port;
  retry_policy policy = quick_policy();
  policy.max_attempts = 6;
  policy.max_backoff_ms = 100;
  resilient_client client{ep, policy};

  const auto maj = truth_table::from_hex(3, "e8");
  auto reply = client.synth(engine::stp, maj);
  ASSERT_TRUE(reply.ok);
  ASSERT_FALSE(reply.chains.empty());
  EXPECT_EQ(reply.chains.front().simulate(), maj);

  // Kill the daemon, then restart it on the same port (SO_REUSEADDR).
  listener->stop();
  accept_thread.join();
  listener.reset();
  daemon = std::make_unique<synthesis_server>(opts);
  listener = std::make_unique<tcp_socket_server>(
      *daemon, tcp_listen_spec{"127.0.0.1", port});
  std::thread accept_thread2{[&listener] { listener->run(); }};

  // The client's connection is dead; the next request must ride through
  // EOF -> backoff -> reconnect and come back with the same answer.
  reply = client.synth(engine::stp, maj);
  ASSERT_TRUE(reply.ok);
  ASSERT_FALSE(reply.chains.empty());
  EXPECT_EQ(reply.chains.front().simulate(), maj);
  EXPECT_GE(client.metrics().reconnects, 1u);
  EXPECT_GE(client.metrics().retries, 1u);

  listener->stop();
  accept_thread2.join();
}

// ---- satellite: line_client reply-parsing edge cases ----

TEST_F(ResilientClient, LineClientBusyWithMissingMsDefaultsToZero) {
  std::istringstream in{"BUSY retry-after\n"};
  std::ostringstream out;
  line_client client{in, out};
  const auto reply = client.forward_synth("SYNTH stp 2 8");
  EXPECT_TRUE(reply.busy);
  EXPECT_EQ(reply.retry_after_ms, 0u);
}

TEST_F(ResilientClient, LineClientBusyWithGarbageMsDefaultsToZero) {
  std::istringstream in{"BUSY retry-after soon\n"};
  std::ostringstream out;
  line_client client{in, out};
  const auto reply = client.forward_synth("SYNTH stp 2 8");
  EXPECT_TRUE(reply.busy);
  EXPECT_EQ(reply.retry_after_ms, 0u);
}

TEST_F(ResilientClient, LineClientThrowsOnTruncationAtEveryLineBoundary) {
  // Capture a real multi-chain reply from the daemon core, then replay
  // every strict line-boundary prefix of it: each one must throw (the
  // counted framing promised more lines), and only the full transcript
  // parses.
  server_options opts;
  opts.default_timeout_seconds = 60.0;
  opts.num_threads = 2;
  synthesis_server server{opts};
  std::istringstream req{"SYNTH stp 3 e8\n"};
  std::ostringstream rep;
  server.serve(req, rep);
  std::vector<std::string> lines;
  {
    std::istringstream is{rep.str()};
    std::string line;
    while (std::getline(is, line)) {
      lines.push_back(line);
    }
  }
  ASSERT_GE(lines.size(), 2u) << rep.str();
  for (std::size_t keep = 0; keep < lines.size(); ++keep) {
    std::string transcript;
    for (std::size_t i = 0; i < keep; ++i) {
      transcript += lines[i] + "\n";
    }
    std::istringstream in{transcript};
    std::ostringstream out;
    line_client client{in, out};
    EXPECT_THROW(client.forward_synth("SYNTH stp 3 e8"),
                 std::runtime_error)
        << "prefix of " << keep << " lines parsed as complete";
  }
  std::istringstream in{rep.str()};
  std::ostringstream out;
  line_client client{in, out};
  const auto reply = client.forward_synth("SYNTH stp 3 e8");
  EXPECT_TRUE(reply.ok);
  EXPECT_FALSE(reply.chains.empty());
}

TEST_F(ResilientClient, PartialWriteFailpointBreaksTheStreamCleanly) {
  if (!stpes::util::failpoints_compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = stpes::util::failpoint_registry::instance();
  registry.clear_all();
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  {
    stpes::server::fd_iostream io{fds[1]};
    io << "SYNTH stp 2 8 this-line-is-long-enough-to-split\n";
    registry.set("fd_stream.write.partial", "once,errno=EPIPE");
    io.flush();
    EXPECT_FALSE(io.good()) << "partial write must poison the stream";
    registry.clear_all();
  }
  ::close(fds[1]);
  // The reader sees a strict prefix — exactly the torn-write shape the
  // resilient client must treat as a dead transport.
  stpes::server::fd_iostream reader{fds[0]};
  std::string line;
  const bool got_line = static_cast<bool>(std::getline(reader, line));
  if (got_line) {
    EXPECT_LT(line.size(),
              std::string{"SYNTH stp 2 8 this-line-is-long-enough-to-split"}
                  .size());
  }
  ::close(fds[0]);
}

}  // namespace
