/// \file integration_test.cpp
/// \brief Cross-module end-to-end properties: the STP expression pipeline,
///        the canonical-form solver, the synthesis engines, and the
///        circuit AllSAT solver must all tell one consistent story.

#include <gtest/gtest.h>

#include "allsat/circuit_allsat.hpp"
#include "core/exact_synthesis.hpp"
#include "stp/expr.hpp"
#include "stp/stp_allsat.hpp"
#include "tt/dsd.hpp"
#include "util/rng.hpp"
#include "workload/collections.hpp"

namespace {

using stpes::core::engine;
using stpes::core::exact_synthesis;
using stpes::tt::truth_table;

/// Chain -> expression-level STP check: the chain's function, re-encoded
/// as a canonical logic matrix, must have exactly the chain's on-set as
/// satisfying columns.
TEST(Integration, ChainOnSetEqualsCanonicalFormSolutions) {
  stpes::util::rng rng{808};
  for (int iteration = 0; iteration < 10; ++iteration) {
    truth_table f{3, rng.next_u64() & 0xFF};
    const auto r = exact_synthesis(f, engine::stp, 30.0);
    ASSERT_TRUE(r.ok());
    const auto chain_function = r.best().simulate();
    const auto canonical =
        stpes::stp::logic_matrix::from_truth_table(chain_function);
    auto minterms = stpes::stp::all_sat_columns(canonical);
    std::sort(minterms.begin(), minterms.end());
    std::vector<std::uint64_t> expected;
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      if (f.get_bit(t)) {
        expected.push_back(t);
      }
    }
    EXPECT_EQ(minterms, expected);
  }
}

/// The two AllSAT engines (canonical-form halving and circuit traverse)
/// agree on every synthesized chain.
TEST(Integration, BothAllSatEnginesAgreeOnSynthesizedChains) {
  const auto functions =
      stpes::workload::fdsd_functions(4, 6, /*seed=*/17);
  for (const auto& f : functions) {
    const auto r = exact_synthesis(f, engine::stp, 30.0);
    ASSERT_TRUE(r.ok());
    for (const auto& c : r.chains) {
      const auto circuit = stpes::allsat::solve_all(c);
      const auto covered = stpes::allsat::solutions_to_function(
          c.num_inputs(), circuit.solutions);
      stpes::stp::stp_sat_solver matrix_solver{
          stpes::stp::logic_matrix::from_truth_table(f)};
      EXPECT_EQ(covered.count_ones(), matrix_solver.solve_all().size());
      EXPECT_EQ(covered, f);
    }
  }
}

/// DSD structure predicts STP synthesis difficulty: fully-DSD functions
/// synthesize with exactly support-1 gates (a read-once tree exists).
TEST(Integration, FdsdOptimumMatchesReadOnceSize) {
  const auto functions = stpes::workload::fdsd_functions(5, 6, 23);
  for (const auto& f : functions) {
    const auto r = exact_synthesis(f, engine::stp, 30.0);
    ASSERT_TRUE(r.ok()) << f.to_hex();
    EXPECT_EQ(r.optimum_gates, f.support_size() - 1) << f.to_hex();
  }
}

/// PDSD functions need strictly more gates than a read-once tree.
TEST(Integration, PdsdOptimumExceedsReadOnceSize) {
  const auto functions = stpes::workload::pdsd_functions(4, 4, 29);
  for (const auto& f : functions) {
    const auto r = exact_synthesis(f, engine::cegar, 30.0);
    ASSERT_TRUE(r.ok()) << f.to_hex();
    EXPECT_GT(r.optimum_gates, f.support_size() - 1) << f.to_hex();
  }
}

/// Expression pipeline end-to-end: build an expression, synthesize its
/// evaluation, verify the chain against the canonical form's on-set.
TEST(Integration, ExpressionToOptimalChain) {
  using stpes::stp::expr;
  const auto e = (expr::var(0) & expr::var(1)) | (expr::var(2) ^ expr::var(3));
  const auto f = e.evaluate(4);
  EXPECT_EQ(f, truth_table::from_hex(4, "0x8ff8"));
  const auto canonical = e.canonical().to_logic_matrix(4);
  EXPECT_EQ(canonical.to_truth_table(), f);
  const auto r = exact_synthesis(f, engine::stp, 30.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 3u);
}

/// All four engines on a mixed bag of structured functions, checking
/// sizes against each other and chains against the specification.
TEST(Integration, StructuredFunctionsAcrossEngines) {
  std::vector<truth_table> functions;
  // MUX(s; a, b), AND-OR ladder, parity, one prime function.
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto s = truth_table::nth_var(3, 2);
  functions.push_back((s & a) | (~s & b));
  functions.push_back((a & b) | s);
  functions.push_back(a ^ b ^ s);
  functions.push_back(truth_table::from_hex(3, "0xe8"));
  for (const auto& f : functions) {
    int reference = -1;
    for (const auto eng :
         {engine::stp, engine::bms, engine::fen, engine::cegar}) {
      const auto r = exact_synthesis(f, eng, 60.0);
      ASSERT_TRUE(r.ok()) << f.to_hex();
      EXPECT_EQ(r.best().simulate(), f);
      if (reference < 0) {
        reference = static_cast<int>(r.optimum_gates);
      } else {
        EXPECT_EQ(static_cast<int>(r.optimum_gates), reference)
            << f.to_hex();
      }
    }
  }
}

}  // namespace
