/// \file aiger_io_test.cpp
/// \brief AIGER reader/writer: round trips in both formats, the reader's
///        on-load strash dedup and topological re-sorting, every rejection
///        path (bad magic, short/oversized headers, latches, out-of-range
///        literals, cycles, truncated varints), and the vendored benchmark
///        set — its MANIFEST CRC32s and that every file loads.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aiger_io.hpp"
#include "util/crc32.hpp"

#ifndef STPES_AIG_DATA_DIR
#define STPES_AIG_DATA_DIR "tests/data/aig"
#endif

namespace {

using stpes::aig::aig_network;
using stpes::aig::aiger_error;
using stpes::aig::lit_not;
using stpes::aig::read_aiger;
using stpes::aig::read_aiger_file;
using stpes::aig::unsupported_latches_error;
using stpes::aig::write_aiger_ascii;
using stpes::aig::write_aiger_binary;
using stpes::aig::write_aiger_file;

aig_network parse(const std::string& text) {
  std::istringstream in{text};
  return read_aiger(in);
}

/// A small non-symmetric network exercising complemented fanins and a
/// complemented output: f0 = maj-ish (a&b) | (!a&c), f1 = !(a&b).
aig_network sample_network() {
  aig_network net{3};
  const auto a = net.input_lit(0);
  const auto b = net.input_lit(1);
  const auto c = net.input_lit(2);
  const auto ab = net.create_and(a, b);
  const auto nac = net.create_and(lit_not(a), c);
  net.add_output(net.create_or(ab, nac));
  net.add_output(lit_not(ab));
  return net;
}

TEST(AigerIo, AsciiRoundTripPreservesFunctionAndShape) {
  const auto net = sample_network();
  std::ostringstream os;
  write_aiger_ascii(os, net);
  const auto back = parse(os.str());
  EXPECT_EQ(back.num_inputs(), net.num_inputs());
  EXPECT_EQ(back.num_ands(), net.num_ands());
  EXPECT_EQ(back.num_outputs(), net.num_outputs());
  EXPECT_EQ(back.simulate(), net.simulate());
  EXPECT_TRUE(back.is_well_formed());
}

TEST(AigerIo, BinaryRoundTripPreservesFunctionAndShape) {
  const auto net = sample_network();
  std::ostringstream os;
  write_aiger_binary(os, net);
  EXPECT_EQ(os.str().rfind("aig ", 0), 0u);
  const auto back = parse(os.str());
  EXPECT_EQ(back.num_ands(), net.num_ands());
  EXPECT_EQ(back.simulate(), net.simulate());
}

TEST(AigerIo, FileWriterDispatchesOnExtension) {
  const auto net = sample_network();
  const auto dir = ::testing::TempDir();
  const auto ascii_path = dir + "aiger_io_test.aag";
  const auto binary_path = dir + "aiger_io_test.aig";
  write_aiger_file(ascii_path, net);
  write_aiger_file(binary_path, net);
  std::ifstream ascii{ascii_path};
  std::string magic;
  ascii >> magic;
  EXPECT_EQ(magic, "aag");
  EXPECT_EQ(read_aiger_file(ascii_path).simulate(), net.simulate());
  EXPECT_EQ(read_aiger_file(binary_path).simulate(), net.simulate());
  std::remove(ascii_path.c_str());
  std::remove(binary_path.c_str());
}

TEST(AigerIo, MissingFileIsAnAigerError) {
  EXPECT_THROW(read_aiger_file("/nonexistent/no-such-circuit.aag"),
               aiger_error);
}

TEST(AigerIo, LatchesAreRejectedWithTheNamedError) {
  // Valid AIGER, sequential: one latch.  The error type is distinct from
  // plain malformed input so callers can report "unsupported", and still
  // catchable as aiger_error.
  const std::string latched = "aag 2 1 1 1 0\n2\n4 2\n4\n";
  EXPECT_THROW(parse(latched), unsupported_latches_error);
  EXPECT_THROW(parse(latched), aiger_error);
}

TEST(AigerIo, MalformedHeadersAreRejected) {
  // Empty input, bad magic, short header, trailing junk, M too small for
  // the section counts, M beyond the sanity bound, binary M != I+A.
  EXPECT_THROW(parse(""), aiger_error);
  EXPECT_THROW(parse("agg 1 1 0 0 0\n2\n"), aiger_error);
  EXPECT_THROW(parse("aag 1 1 0\n"), aiger_error);
  EXPECT_THROW(parse("aag 1 1 0 0 0 7\n"), aiger_error);
  EXPECT_THROW(parse("aag 1 1 0 0 1\n2\n4 2 2\n"), aiger_error);
  EXPECT_THROW(parse("aag 999999999999 999999999998 0 0 1\n"), aiger_error);
  EXPECT_THROW(parse("aig 3 1 0 0 1\n"), aiger_error);
}

TEST(AigerIo, MalformedBodiesAreRejected) {
  // Truncated after the header; malformed input line; odd input literal;
  // variable defined twice; out-of-range output; and-lhs reused; fanin
  // referencing an undefined variable.
  EXPECT_THROW(parse("aag 1 1 0 0 0\n"), aiger_error);
  EXPECT_THROW(parse("aag 1 1 0 0 0\nnope\n"), aiger_error);
  EXPECT_THROW(parse("aag 1 1 0 0 0\n3\n"), aiger_error);
  EXPECT_THROW(parse("aag 2 2 0 0 0\n2\n2\n"), aiger_error);
  EXPECT_THROW(parse("aag 1 1 0 1 0\n2\n9\n"), aiger_error);
  EXPECT_THROW(parse("aag 2 1 0 0 1\n2\n2 2 2\n"), aiger_error);
  EXPECT_THROW(parse("aag 3 1 0 0 1\n2\n4 6 2\n"), aiger_error);
}

TEST(AigerIo, AsciiBodyMayDefineAndsInAnyOrder) {
  // Node 6 = 4 & 2 is defined before node 4 = 2 & 3 — legal per the spec;
  // the reader topologically sorts.  Output 6 computes a & (a & !b)...
  // i.e. a & !b.
  const auto net =
      parse("aag 4 2 0 1 2\n2\n4\n6\n6 8 2\n8 2 5\n");
  EXPECT_EQ(net.num_inputs(), 2u);
  ASSERT_EQ(net.num_outputs(), 1u);
  const auto tts = net.simulate();
  // a & !b over (a, b): minterm 01 only -> 0x2.
  EXPECT_EQ(tts[0], stpes::tt::truth_table(2, 0x2));
}

TEST(AigerIo, CombinationalCyclesAreDetected) {
  // 4 and 6 define each other.
  EXPECT_THROW(parse("aag 3 1 0 0 2\n2\n4 6 2\n6 4 2\n"), aiger_error);
}

TEST(AigerIo, TruncatedBinarySectionsAreRejected) {
  // Header promises one AND; the body holds zero bytes / half a varint /
  // a varint that never terminates within 64 bits.
  EXPECT_THROW(parse("aig 2 1 0 0 1\n"), aiger_error);
  EXPECT_THROW(parse(std::string("aig 2 1 0 0 1\n") + '\x82'), aiger_error);
  std::string runaway = "aig 2 1 0 0 1\n";
  runaway.append(12, '\xFF');
  EXPECT_THROW(parse(runaway), aiger_error);
  // delta0 = 0 (self-reference) and delta0 > lhs (negative rhs) are both
  // out of range.
  EXPECT_THROW(parse(std::string("aig 2 1 0 0 1\n") + '\x00' + '\x00'),
               aiger_error);
  EXPECT_THROW(parse(std::string("aig 2 1 0 0 1\n") + '\x7F' + '\x00'),
               aiger_error);
}

TEST(AigerIo, ReaderDeduplicatesStructurallyRepeatedAnds) {
  // Two textually distinct ANDs with the same (commuted) fanin pair: the
  // on-load strash folds them, so the network is smaller than header A and
  // both outputs map to the same internal node.
  const auto net = parse("aag 4 2 0 2 2\n2\n4\n6\n8\n6 4 2\n8 2 4\n");
  EXPECT_EQ(net.num_ands(), 1u);
  ASSERT_EQ(net.num_outputs(), 2u);
  EXPECT_EQ(net.outputs()[0], net.outputs()[1]);
}

TEST(AigerIo, SymbolTableAndCommentsAreIgnored) {
  const auto net = parse(
      "aag 3 2 0 1 1\n2\n4\n6\n6 4 2\ni0 alpha\ni1 beta\no0 f\nc\nnote\n");
  EXPECT_EQ(net.num_ands(), 1u);
  EXPECT_EQ(net.num_outputs(), 1u);
}

TEST(AigerIo, VendoredBenchmarksMatchTheirManifest) {
  namespace fs = std::filesystem;
  const fs::path dir{STPES_AIG_DATA_DIR};
  std::ifstream manifest{dir / "MANIFEST"};
  ASSERT_TRUE(manifest.is_open()) << (dir / "MANIFEST");
  std::string crc_hex;
  std::uintmax_t bytes = 0;
  std::string name;
  std::size_t entries = 0;
  while (manifest >> crc_hex >> bytes >> name) {
    ++entries;
    const auto path = dir / name;
    std::ifstream file{path, std::ios::binary};
    ASSERT_TRUE(file.is_open()) << path;
    std::ostringstream data;
    data << file.rdbuf();
    const std::string blob = data.str();
    EXPECT_EQ(blob.size(), bytes) << name;
    std::ostringstream crc;
    crc << std::hex;
    crc.width(8);
    crc.fill('0');
    crc << stpes::util::crc32(blob);
    EXPECT_EQ(crc.str(), crc_hex) << name << " changed on disk; rerun "
                                     "generate_benchmarks.py and commit "
                                     "the new MANIFEST";
    // Every vendored circuit must load, be combinational, and be
    // structurally sane.
    const auto net = read_aiger_file(path.string());
    EXPECT_TRUE(net.is_well_formed()) << name;
    EXPECT_GT(net.num_outputs(), 0u) << name;
  }
  // The sweep engine's acceptance bar needs a real corpus, not a stub.
  EXPECT_GE(entries, 4u);
}

}  // namespace
