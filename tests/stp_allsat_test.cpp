#include "stp/stp_allsat.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "stp/expr.hpp"
#include "util/rng.hpp"

namespace {

using stpes::stp::all_sat_columns;
using stpes::stp::logic_matrix;
using stpes::stp::stp_sat_solver;
using stpes::tt::truth_table;

truth_table random_tt(unsigned n, stpes::util::rng& rng) {
  truth_table f{n};
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    f.set_bit(t, rng.next_bool());
  }
  return f;
}

TEST(StpAllSat, DirectScanFindsOnSet) {
  const auto f = truth_table::from_hex(3, "0xe8");  // MAJ3
  const auto minterms = all_sat_columns(logic_matrix::from_truth_table(f));
  std::vector<std::uint64_t> expected = {3, 5, 6, 7};
  auto sorted = minterms;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, expected);
}

TEST(StpAllSat, SolverAgreesWithDirectScanOnRandomFunctions) {
  stpes::util::rng rng{13};
  for (unsigned n = 1; n <= 8; ++n) {
    for (int iteration = 0; iteration < 5; ++iteration) {
      const auto f = random_tt(n, rng);
      const auto m = logic_matrix::from_truth_table(f);
      stp_sat_solver solver{m};
      auto solutions = solver.solve_all();
      std::vector<std::uint64_t> minterms;
      minterms.reserve(solutions.size());
      for (const auto& s : solutions) {
        EXPECT_EQ(s.values.size(), n);
        minterms.push_back(s.to_minterm());
      }
      std::sort(minterms.begin(), minterms.end());
      auto expected = all_sat_columns(m);
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(minterms, expected) << f.to_hex();
      // Every solution is a genuine on-set member.
      for (auto t : minterms) {
        EXPECT_TRUE(f.get_bit(t));
      }
    }
  }
}

TEST(StpAllSat, UnsatisfiableFormula) {
  const auto m =
      logic_matrix::from_truth_table(truth_table::constant(4, false));
  stp_sat_solver solver{m};
  EXPECT_FALSE(solver.is_satisfiable());
  EXPECT_TRUE(solver.solve_all().empty());
  EXPECT_TRUE(solver.solve_one().empty());
}

TEST(StpAllSat, TautologyHasAllAssignments) {
  const auto m =
      logic_matrix::from_truth_table(truth_table::constant(3, true));
  stp_sat_solver solver{m};
  EXPECT_EQ(solver.solve_all().size(), 8u);
}

TEST(StpAllSat, SolveOneReturnsFirstLexicographic) {
  // Fig. 1 order: x1 = True explored first.
  const auto f = truth_table::constant(2, true);
  stp_sat_solver solver{logic_matrix::from_truth_table(f)};
  const auto one = solver.solve_one();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(one[0].values[0]);
  EXPECT_TRUE(one[0].values[1]);
}

TEST(StpAllSat, BacktrackStatisticsAreSane) {
  // A single satisfying assignment in an 8-variable formula forces many
  // cut branches.
  truth_table f{8};
  f.set_bit(170, true);
  stp_sat_solver solver{logic_matrix::from_truth_table(f)};
  const auto solutions = solver.solve_all();
  ASSERT_EQ(solutions.size(), 1u);
  EXPECT_EQ(solutions[0].to_minterm(), 170u);
  // With one solution, exactly one branch per level survives; the sibling
  // of each surviving branch is cut.
  EXPECT_EQ(solver.stats().backtracks, 8u);
  EXPECT_EQ(solver.stats().branches_explored, 16u);
}

TEST(StpAllSat, ZeroVariableFormulas) {
  stp_sat_solver sat_solver{
      logic_matrix::from_truth_table(truth_table::constant(0, true))};
  EXPECT_EQ(sat_solver.solve_all().size(), 1u);
  stp_sat_solver unsat_solver{
      logic_matrix::from_truth_table(truth_table::constant(0, false))};
  EXPECT_TRUE(unsat_solver.solve_all().empty());
}

TEST(StpAllSat, AssignmentMintermRoundTrip) {
  stpes::stp::stp_assignment a;
  a.values = {true, false, true};  // x1=T (input 2), x2=F, x3=T (input 0)
  EXPECT_EQ(a.to_minterm(), 0b101u);
}

TEST(StpAllSat, EndToEndWithExpressionPipeline) {
  // AllSAT of (x0 | x1) & !x2 via the full expression -> canonical ->
  // solver pipeline.
  const auto e =
      (stpes::stp::expr::var(0) | stpes::stp::expr::var(1)) &
      !stpes::stp::expr::var(2);
  const auto m = e.canonical().to_logic_matrix(3);
  stp_sat_solver solver{m};
  const auto solutions = solver.solve_all();
  EXPECT_EQ(solutions.size(), 3u);
  for (const auto& s : solutions) {
    const auto t = s.to_minterm();
    EXPECT_TRUE((t & 1) || (t & 2));
    EXPECT_FALSE(t & 4);
  }
}

}  // namespace
