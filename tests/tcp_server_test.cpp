/// \file tcp_server_test.cpp
/// \brief The TCP transport: round trips, idle shedding, drain.
///
/// Every test binds 127.0.0.1 port 0 (kernel-assigned ephemeral port, read
/// back through `port()`), so suites run in parallel without collisions
/// and CI needs no fixed-port reservations.  Covered: listen-spec parsing,
/// a full SYNTH round trip over a real TCP socket, the per-session idle
/// timeout (both a half-open peer that never writes and a session that
/// goes silent mid-conversation), the `idle_timeouts` STATS counter, and
/// graceful drain with a connected-but-idle client.

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>

#include "server/client.hpp"
#include "server/fd_stream.hpp"
#include "server/resilient_client.hpp"
#include "server/server.hpp"
#include "server/tcp_socket_server.hpp"
#include "tt/truth_table.hpp"

namespace {

using stpes::core::engine;
using stpes::server::endpoint;
using stpes::server::line_client;
using stpes::server::server_options;
using stpes::server::synthesis_server;
using stpes::server::tcp_listen_spec;
using stpes::server::tcp_socket_server;
using stpes::tt::truth_table;

/// A daemon on an ephemeral TCP port with its accept loop on a thread.
class tcp_daemon {
public:
  explicit tcp_daemon(server_options opts = make_options())
      : server_(opts),
        listener_(server_, tcp_listen_spec{"127.0.0.1", 0}),
        thread_([this] { listener_.run(); }) {}

  ~tcp_daemon() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      listener_.stop();
      thread_.join();
    }
  }

  [[nodiscard]] endpoint ep() const {
    endpoint e;
    e.transport = endpoint::kind::tcp;
    e.host_or_path = "127.0.0.1";
    e.port = listener_.port();
    return e;
  }

  [[nodiscard]] synthesis_server& server() { return server_; }

  static server_options make_options() {
    server_options opts;
    opts.default_timeout_seconds = 60.0;
    opts.num_threads = 2;
    opts.drain_grace_seconds = 0.2;
    return opts;
  }

private:
  synthesis_server server_;
  tcp_socket_server listener_;
  std::thread thread_;
};

/// A raw connected socket wrapped in an iostream (no client machinery).
struct raw_conn {
  explicit raw_conn(const endpoint& ep)
      : fd(stpes::server::connect_endpoint(ep, 2000)), io(fd) {}
  ~raw_conn() { ::close(fd); }
  int fd;
  stpes::server::fd_iostream io;
};

class TcpServer : public ::testing::Test {
protected:
  void SetUp() override { std::signal(SIGPIPE, SIG_IGN); }
};

TEST_F(TcpServer, ListenSpecParsesHostPortForms) {
  auto spec = tcp_listen_spec::parse("127.0.0.1:8080");
  EXPECT_EQ(spec.host, "127.0.0.1");
  EXPECT_EQ(spec.port, 8080);

  spec = tcp_listen_spec::parse("*:0");
  EXPECT_TRUE(spec.host.empty());
  EXPECT_EQ(spec.port, 0);

  spec = tcp_listen_spec::parse(":4000");
  EXPECT_TRUE(spec.host.empty());
  EXPECT_EQ(spec.port, 4000);

  EXPECT_THROW(tcp_listen_spec::parse("nocolon"), std::runtime_error);
  EXPECT_THROW(tcp_listen_spec::parse("host:notaport"), std::runtime_error);
  EXPECT_THROW(tcp_listen_spec::parse("host:70000"), std::runtime_error);
  EXPECT_THROW(tcp_listen_spec::parse("host:80x"), std::runtime_error);
}

TEST_F(TcpServer, EphemeralPortIsResolvedAndNonZero) {
  tcp_daemon daemon;
  EXPECT_NE(daemon.ep().port, 0);
}

TEST_F(TcpServer, SynthRoundTripOverTcp) {
  tcp_daemon daemon;
  raw_conn conn{daemon.ep()};
  line_client client{conn.io, conn.io};

  EXPECT_TRUE(client.ping());
  const auto maj = truth_table::from_hex(3, "e8");
  const auto reply = client.synth(engine::stp, maj);
  ASSERT_TRUE(reply.ok);
  ASSERT_FALSE(reply.chains.empty());
  EXPECT_EQ(reply.chains.front().simulate(), maj);
  client.quit();
}

TEST_F(TcpServer, ConcurrentTcpClientsGetConsistentAnswers) {
  tcp_daemon daemon;
  const auto f = truth_table::from_hex(3, "96");
  std::vector<std::thread> threads;
  std::vector<std::string> raws(4);
  for (std::size_t i = 0; i < raws.size(); ++i) {
    threads.emplace_back([&, i] {
      raw_conn conn{daemon.ep()};
      line_client client{conn.io, conn.io};
      const auto reply = client.synth(engine::stp, f);
      EXPECT_TRUE(reply.ok);
      // The head carries a per-session request id; the chain lines are
      // what must be identical across clients.
      const auto& raw = client.last_raw();
      raws[i] = raw.substr(raw.find('\n') + 1);
      client.quit();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (std::size_t i = 1; i < raws.size(); ++i) {
    EXPECT_EQ(raws[i], raws[0]) << "client " << i << " saw a different reply";
  }
}

TEST_F(TcpServer, HalfOpenConnectionIsShedWithIdleTimeout) {
  auto opts = tcp_daemon::make_options();
  opts.idle_timeout_seconds = 0.2;
  tcp_daemon daemon{opts};

  // Connect and never write a byte — the bounded handshake: the read
  // deadline starts at accept, so the session is shed, not pinned.
  raw_conn conn{daemon.ep()};
  std::string line;
  ASSERT_TRUE(std::getline(conn.io, line));
  EXPECT_EQ(line, "ERR idle-timeout");
  EXPECT_FALSE(std::getline(conn.io, line)) << "expected EOF after the shed";
}

TEST_F(TcpServer, IdleAfterTrafficIsShedAndCounted) {
  auto opts = tcp_daemon::make_options();
  opts.idle_timeout_seconds = 0.2;
  tcp_daemon daemon{opts};

  raw_conn conn{daemon.ep()};
  line_client client{conn.io, conn.io};
  EXPECT_TRUE(client.ping());  // live traffic first, then silence
  std::string line;
  ASSERT_TRUE(std::getline(conn.io, line));
  EXPECT_EQ(line, "ERR idle-timeout");

  // The shed is visible in the daemon's counters.
  EXPECT_EQ(daemon.server().counters().idle_timeouts, 1u);
  raw_conn probe{daemon.ep()};
  line_client stats_client{probe.io, probe.io};
  const auto json = stats_client.stats_json();
  EXPECT_NE(json.find("\"idle_timeouts\":1"), std::string::npos) << json;
  stats_client.quit();
}

TEST_F(TcpServer, StopDrainsConnectedIdleClients) {
  tcp_daemon daemon;
  raw_conn conn{daemon.ep()};
  line_client client{conn.io, conn.io};
  EXPECT_TRUE(client.ping());
  // The client sits idle (blocked server-side in read); stop() must
  // unblock that session and return — the test hanging IS the failure.
  daemon.stop();
  std::string line;
  EXPECT_FALSE(std::getline(conn.io, line));
}

TEST_F(TcpServer, ShutdownVerbStopsTheListener) {
  tcp_daemon daemon;
  {
    raw_conn conn{daemon.ep()};
    line_client client{conn.io, conn.io};
    client.shutdown();
  }
  daemon.stop();  // must already be stopping; join promptly
  EXPECT_TRUE(daemon.server().shutdown_requested());
}

}  // namespace
