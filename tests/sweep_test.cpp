/// \file sweep_test.cpp
/// \brief SAT-sweeping engine: merges under both provers, constant-node
///        detection, counterexample-driven refinement (the refutation
///        path), cancellation semantics, determinism, and the acceptance
///        sweep over every vendored AIGER benchmark.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aiger_io.hpp"
#include "sweep/sweep.hpp"
#include "util/run_context.hpp"

#ifndef STPES_AIG_DATA_DIR
#define STPES_AIG_DATA_DIR "tests/data/aig"
#endif

namespace {

using stpes::aig::aig_network;
using stpes::aig::lit_not;
using stpes::aig::literal;
using stpes::sweep::networks_equivalent;
using stpes::sweep::prover;
using stpes::sweep::sweep;
using stpes::sweep::sweep_options;

/// XOR built two structurally different ways (strash cannot collapse
/// them); the classic one-pair sweeping instance.
aig_network xor_two_ways() {
  aig_network net{2};
  const literal a = net.input_lit(0);
  const literal b = net.input_lit(1);
  const literal via_minterms =
      net.create_or(net.create_and(a, lit_not(b)),
                    net.create_and(lit_not(a), b));
  const literal via_xnor =
      net.create_and(lit_not(net.create_and(a, b)),
                     lit_not(net.create_and(lit_not(a), lit_not(b))));
  net.add_output(via_minterms);
  net.add_output(lit_not(via_xnor));
  return net;
}

sweep_options with(prover engine) {
  sweep_options opts;
  opts.engine = engine;
  return opts;
}

class SweepProvers : public ::testing::TestWithParam<prover> {};

INSTANTIATE_TEST_SUITE_P(BothProvers, SweepProvers,
                         ::testing::Values(prover::cdcl, prover::allsat),
                         [](const auto& info) {
                           return stpes::sweep::to_string(info.param);
                         });

TEST_P(SweepProvers, MergesTheTwoXorImplementations) {
  const auto net = xor_two_ways();
  const auto result = sweep(net, with(GetParam()));
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.merged_nodes, 1u);
  EXPECT_EQ(result.proofs, result.merged_nodes);
  EXPECT_LT(result.ands_after, result.ands_before);
  EXPECT_EQ(net.simulate(), result.swept.simulate());
  EXPECT_TRUE(networks_equivalent(net, result.swept));
  // The two outputs now share one node: identical or complementary
  // literals of the same variable (the pair is equivalent up to phase).
  ASSERT_EQ(result.swept.num_outputs(), 2u);
  EXPECT_EQ(stpes::aig::lit_var(result.swept.outputs()[0]),
            stpes::aig::lit_var(result.swept.outputs()[1]));
}

TEST_P(SweepProvers, SweepsSemanticConstantsToTheConstantNode) {
  // z = (a & b) & (a & !b) is structurally three live ANDs but identically
  // false; c | z must collapse to plain c and !z to constant true.
  aig_network net{3};
  const literal a = net.input_lit(0);
  const literal b = net.input_lit(1);
  const literal c = net.input_lit(2);
  const literal z =
      net.create_and(net.create_and(a, b), net.create_and(a, lit_not(b)));
  net.add_output(net.create_or(c, z));
  net.add_output(lit_not(z));

  const auto result = sweep(net, with(GetParam()));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.swept.num_ands(), 0u);
  ASSERT_EQ(result.swept.num_outputs(), 2u);
  EXPECT_EQ(result.swept.outputs()[0], net.input_lit(2));
  EXPECT_EQ(result.swept.outputs()[1], stpes::aig::lit_true);
  EXPECT_TRUE(networks_equivalent(net, result.swept));
}

TEST_P(SweepProvers, RefutesFalseCandidatesAndRefinesWithTheWitness) {
  // A 16-input conjunction is 1 on exactly one of 65536 assignments, so
  // a few hundred random patterns (fixed seed) class it — and its deep
  // prefixes — with constant false.  The prover must refute those
  // candidates, and folding the witnesses back into the pattern set must
  // split the classes so the sweep still terminates with the function
  // intact (nothing may actually merge with the constant).
  constexpr unsigned n = 16;
  aig_network net{n};
  literal all = net.input_lit(0);
  for (unsigned i = 1; i < n; ++i) {
    all = net.create_and(all, net.input_lit(i));
  }
  net.add_output(all);

  const auto result = sweep(net, with(GetParam()));
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.refutations, 1u);
  EXPECT_GT(result.sim_rounds, 1u);  // the witness round re-simulated
  EXPECT_EQ(result.merged_nodes, 0u);
  EXPECT_EQ(result.ands_after, result.ands_before);
  EXPECT_TRUE(networks_equivalent(net, result.swept));
}

TEST_P(SweepProvers, SweptDeadConesAreDropped) {
  // Once the redundant output is redirected to the surviving node, the
  // losing implementation's cone is unreachable and must not be copied.
  const auto net = xor_two_ways();
  const auto result = sweep(net, with(GetParam()));
  ASSERT_TRUE(result.completed);
  // 6 ANDs before (3 per implementation); one implementation survives.
  EXPECT_EQ(result.ands_before, 6u);
  EXPECT_EQ(result.ands_after, 3u);
}

TEST(Sweep, DegenerateNetworksAreReturnedUnchanged) {
  // No inputs / no nodes: nothing to simulate, nothing to prove.
  aig_network empty{0};
  empty.add_output(stpes::aig::lit_true);
  const auto r1 = sweep(empty);
  EXPECT_TRUE(r1.completed);
  EXPECT_EQ(r1.swept.outputs(), empty.outputs());

  aig_network wires{2};
  wires.add_output(wires.input_lit(1));
  wires.add_output(lit_not(wires.input_lit(0)));
  const auto r2 = sweep(wires);
  EXPECT_TRUE(r2.completed);
  EXPECT_EQ(r2.swept.outputs(), wires.outputs());
  EXPECT_EQ(r2.candidates, 0u);
}

TEST(Sweep, CancelledRunReturnsAValidPartialNetwork) {
  const auto net = xor_two_ways();
  stpes::core::run_context ctx{60.0};
  ctx.request_cancel();
  const auto result = sweep(net, {}, &ctx);
  EXPECT_FALSE(result.completed);
  // Merges recorded before the cancel (none here) are sound; the returned
  // network must still be the same function.
  EXPECT_TRUE(networks_equivalent(net, result.swept));
  EXPECT_EQ(net.simulate(), result.swept.simulate());
}

TEST(Sweep, ExpiredDeadlineCountsAsIncomplete) {
  const auto net = xor_two_ways();
  stpes::core::run_context ctx{1e-9};  // expires before the first poll
  const auto result = sweep(net, {}, &ctx);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(net.simulate(), result.swept.simulate());
}

TEST(Sweep, FixedSeedIsDeterministic) {
  const auto net = xor_two_ways();
  sweep_options opts;
  opts.seed = 42;
  const auto a = sweep(net, opts);
  const auto b = sweep(net, opts);
  EXPECT_EQ(a.sim_rounds, b.sim_rounds);
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.proofs, b.proofs);
  EXPECT_EQ(a.refutations, b.refutations);
  EXPECT_EQ(a.merged_nodes, b.merged_nodes);
  EXPECT_EQ(a.swept.simulate(), b.swept.simulate());
}

TEST(Sweep, StageCountersFlowIntoTheRunContext) {
  const auto net = xor_two_ways();
  stpes::core::run_context ctx{60.0};
  const auto result = sweep(net, {}, &ctx);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(ctx.counters.sweep_sim_rounds, result.sim_rounds);
  EXPECT_EQ(ctx.counters.sweep_candidates, result.candidates);
  EXPECT_EQ(ctx.counters.sweep_proofs, result.proofs);
  EXPECT_EQ(ctx.counters.sweep_refutations, result.refutations);
  EXPECT_EQ(ctx.counters.sweep_merged_nodes, result.merged_nodes);
  // The result's delta view matches (no other stage ran).
  EXPECT_EQ(result.counters.sweep_proofs, result.proofs);
}

TEST(Sweep, ProgressStructIsBumpedLive) {
  stpes::sweep::sweep_progress progress;
  sweep_options opts;
  opts.progress = &progress;
  const auto result = sweep(xor_two_ways(), opts);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(progress.sim_rounds.load(), result.sim_rounds);
  EXPECT_EQ(progress.candidates.load(), result.candidates);
  EXPECT_EQ(progress.proofs.load(), result.proofs);
  EXPECT_EQ(progress.merged_nodes.load(), result.merged_nodes);
}

TEST(Sweep, NetworksEquivalentDetectsRealDifferences) {
  aig_network f{2};
  f.add_output(f.create_and(f.input_lit(0), f.input_lit(1)));
  aig_network g{2};
  g.add_output(g.create_or(g.input_lit(0), g.input_lit(1)));
  EXPECT_FALSE(networks_equivalent(f, g));
  EXPECT_TRUE(networks_equivalent(f, f));

  // Arity mismatches short-circuit to false.
  aig_network h{3};
  h.add_output(h.create_and(h.input_lit(0), h.input_lit(1)));
  EXPECT_FALSE(networks_equivalent(f, h));
  aig_network two_outs{2};
  two_outs.add_output(two_outs.input_lit(0));
  two_outs.add_output(two_outs.input_lit(1));
  EXPECT_FALSE(networks_equivalent(f, two_outs));

  // Constant outputs compare by complement, against constants and
  // against live cones.
  aig_network k0{2};
  k0.add_output(stpes::aig::lit_false);
  aig_network k1{2};
  k1.add_output(stpes::aig::lit_true);
  EXPECT_FALSE(networks_equivalent(k0, k1));
  EXPECT_TRUE(networks_equivalent(k1, k1));
  // A *semantically* constant-false cone — (a&b) & (a&!b), three live
  // ANDs that the constructor's folds cannot collapse — against a
  // constant output exercises the one-const-side miter path with a real
  // AllSAT solve.
  aig_network dead{2};
  {
    const literal a = dead.input_lit(0);
    const literal b = dead.input_lit(1);
    dead.add_output(dead.create_and(dead.create_and(a, b),
                                    dead.create_and(a, lit_not(b))));
  }
  EXPECT_EQ(dead.num_ands(), 3u);
  EXPECT_TRUE(networks_equivalent(dead, k0));
  EXPECT_FALSE(networks_equivalent(dead, k1));
}

TEST(Sweep, ProverNamesRoundTrip) {
  EXPECT_EQ(stpes::sweep::prover_from_string("cdcl"), prover::cdcl);
  EXPECT_EQ(stpes::sweep::prover_from_string("allsat"), prover::allsat);
  EXPECT_STREQ(stpes::sweep::to_string(prover::cdcl), "cdcl");
  EXPECT_STREQ(stpes::sweep::to_string(prover::allsat), "allsat");
  EXPECT_THROW(stpes::sweep::prover_from_string("dpll"),
               std::invalid_argument);
}

TEST_P(SweepProvers, EveryVendoredBenchmarkSweepsSoundly) {
  // The acceptance bar: every committed benchmark's swept network is
  // AllSAT-equivalence-checked against the original (zero disagreements)
  // and the corpus yields merges on at least two circuits.
  namespace fs = std::filesystem;
  const fs::path dir{STPES_AIG_DATA_DIR};
  std::ifstream manifest{dir / "MANIFEST"};
  ASSERT_TRUE(manifest.is_open()) << (dir / "MANIFEST");
  std::string crc;
  std::uintmax_t bytes = 0;
  std::string name;
  unsigned benchmarks_with_merges = 0;
  std::size_t entries = 0;
  while (manifest >> crc >> bytes >> name) {
    ++entries;
    const auto net = stpes::aig::read_aiger_file((dir / name).string());
    const auto result = sweep(net, with(GetParam()));
    EXPECT_TRUE(result.completed) << name;
    EXPECT_TRUE(networks_equivalent(net, result.swept)) << name;
    EXPECT_LE(result.ands_after, result.ands_before) << name;
    if (result.merged_nodes > 0) {
      ++benchmarks_with_merges;
    }
  }
  EXPECT_GE(entries, 4u);
  EXPECT_GE(benchmarks_with_merges, 2u);
}

}  // namespace
