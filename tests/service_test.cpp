/// \file service_test.cpp
/// \brief Unit tests for the service building blocks: thread pool, sharded
///        single-flight cache, and metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "service/metrics.hpp"
#include "service/shard_cache.hpp"
#include "service/thread_pool.hpp"
#include "tt/truth_table.hpp"

namespace {

using stpes::service::latency_histogram;
using stpes::service::shard_cache;
using stpes::service::thread_pool;
using stpes::tt::truth_table;

stpes::synth::result make_result(unsigned gates) {
  stpes::synth::result r;
  r.outcome = stpes::synth::status::success;
  r.optimum_gates = gates;
  return r;
}

truth_table key_of(std::uint64_t bits) { return truth_table{4, bits}; }

TEST(ThreadPool, RunsEverySubmittedTask) {
  thread_pool pool{4};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100u);
  EXPECT_EQ(pool.num_threads(), 4u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  thread_pool pool{0};
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  thread_pool pool{2};
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
  });
  // wait_idle must cover the task submitted from inside the first task.
  // Give the inner submit a moment to land before waiting.
  while (counter.load() < 1) {
    std::this_thread::yield();
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ShutdownDrainsQueueAndIsIdempotent) {
  std::atomic<int> counter{0};
  {
    thread_pool pool{1};
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    pool.shutdown();
    EXPECT_EQ(counter.load(), 10);
    pool.shutdown();  // no-op
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  }  // destructor after explicit shutdown must also be safe
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, SurvivesThrowingTask) {
  thread_pool pool{1};
  pool.submit([] { throw std::runtime_error{"task failure"}; });
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ShardCache, HitAfterMiss) {
  shard_cache cache{{4, 16}};
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_result(3);
  };
  const auto first = cache.get_or_compute(key_of(0x8ff8), compute);
  const auto second = cache.get_or_compute(key_of(0x8ff8), compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.optimum_gates, 3u);
  EXPECT_EQ(second.optimum_gates, 3u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ShardCache, LruEvictsOldestReadyEntry) {
  // One shard with room for two entries makes eviction order observable.
  shard_cache cache{{1, 2}};
  int computes = 0;
  const auto compute_n = [&](unsigned n) {
    return [&computes, n] {
      ++computes;
      return make_result(n);
    };
  };
  cache.get_or_compute(key_of(1), compute_n(1));
  cache.get_or_compute(key_of(2), compute_n(2));
  // Touch key 1 so key 2 becomes the LRU victim.
  cache.get_or_compute(key_of(1), compute_n(1));
  cache.get_or_compute(key_of(3), compute_n(3));  // evicts key 2
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  computes = 0;
  cache.get_or_compute(key_of(1), compute_n(1));  // still resident
  EXPECT_EQ(computes, 0);
  cache.get_or_compute(key_of(2), compute_n(2));  // was evicted: recompute
  EXPECT_EQ(computes, 1);
}

TEST(ShardCache, UnboundedWhenCapacityZero) {
  shard_cache cache{{1, 0}};
  for (std::uint64_t i = 0; i < 100; ++i) {
    cache.get_or_compute(key_of(i), [] { return make_result(1); });
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ShardCache, SingleFlightComputesOnceUnderContention) {
  shard_cache cache{{8, 64}};
  std::atomic<int> computes{0};
  std::atomic<int> started{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<unsigned> gates(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      started.fetch_add(1);
      while (started.load() < kThreads) {
        std::this_thread::yield();
      }
      const auto r = cache.get_or_compute(key_of(0xcafe), [&] {
        computes.fetch_add(1);
        // Long enough that the other threads arrive while in flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return make_result(7);
      });
      gates[t] = r.optimum_gates;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(computes.load(), 1);
  for (const auto g : gates) {
    EXPECT_EQ(g, 7u);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.inflight_waits,
            static_cast<std::size_t>(kThreads - 1));
}

TEST(ShardCache, ThrowingComputeIsNotCached) {
  shard_cache cache{{2, 8}};
  EXPECT_THROW(cache.get_or_compute(
                   key_of(5), []() -> stpes::synth::result {
                     throw std::runtime_error{"engine exploded"};
                   }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
  int computes = 0;
  const auto r = cache.get_or_compute(key_of(5), [&] {
    ++computes;
    return make_result(2);
  });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(r.optimum_gates, 2u);
}

TEST(ShardCache, InsertAndDumpRoundTrip) {
  shard_cache cache{{4, 16}};
  EXPECT_TRUE(cache.insert(key_of(0x1), make_result(1)));
  EXPECT_TRUE(cache.insert(key_of(0x2), make_result(2)));
  EXPECT_FALSE(cache.insert(key_of(0x1), make_result(9)));  // first wins
  const auto dumped = cache.dump();
  EXPECT_EQ(dumped.size(), 2u);
  // Warm entries serve as hits without computing.
  int computes = 0;
  const auto r = cache.get_or_compute(key_of(0x1), [&] {
    ++computes;
    return make_result(9);
  });
  EXPECT_EQ(computes, 0);
  EXPECT_EQ(r.optimum_gates, 1u);
}

TEST(Metrics, HistogramBucketsByPowerOfTwoMicroseconds) {
  latency_histogram h;
  h.record_seconds(0.5e-6);   // sub-microsecond -> bucket 0
  h.record_seconds(1.5e-6);   // [1, 2) us -> bucket 0
  h.record_seconds(3e-6);     // [2, 4) us -> bucket 1
  h.record_seconds(1.0);      // 1 s = 2^~19.9 us -> bucket 19
  const auto buckets = h.bucket_counts();
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[19], 1u);
  EXPECT_NEAR(h.total_seconds(), 1.0, 1e-3);
}

TEST(Metrics, SnapshotRendersTextAndJson) {
  stpes::service::metrics m;
  m.on_request();
  m.on_request();
  m.on_cache_hit();
  m.on_cache_miss();
  m.on_synth_run(0.001, true);
  m.on_synth_run(0.002, false);
  const auto s = m.snapshot();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.synth_runs, 2u);
  EXPECT_EQ(s.synth_failures, 1u);
  EXPECT_EQ(s.synth_latency_count, 2u);

  const auto text = s.to_text();
  EXPECT_NE(text.find("requests          2"), std::string::npos);
  EXPECT_NE(text.find("synth_runs        2"), std::string::npos);

  const auto json = s.to_json();
  EXPECT_NE(json.find("\"requests\":2"), std::string::npos);
  EXPECT_NE(json.find("\"synth_failures\":1"), std::string::npos);
  EXPECT_NE(json.find("\"synth_latency_buckets\":["), std::string::npos);
}

}  // namespace
