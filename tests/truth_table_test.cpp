#include "tt/truth_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace {

using stpes::tt::apply_binary_op;
using stpes::tt::truth_table;

TEST(TruthTable, ConstantsAndBitAccess) {
  for (unsigned n = 0; n <= 8; ++n) {
    const auto zero = truth_table::constant(n, false);
    const auto one = truth_table::constant(n, true);
    EXPECT_TRUE(zero.is_const0());
    EXPECT_TRUE(one.is_const1());
    EXPECT_EQ(zero.count_ones(), 0u);
    EXPECT_EQ(one.count_ones(), one.num_bits());
    EXPECT_EQ(one.num_bits(), std::uint64_t{1} << n);
  }
}

TEST(TruthTable, SetAndGetBitRoundTrip) {
  truth_table f{7};
  for (std::uint64_t t = 0; t < f.num_bits(); t += 3) {
    f.set_bit(t, true);
  }
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    EXPECT_EQ(f.get_bit(t), t % 3 == 0) << "bit " << t;
  }
  f.set_bit(0, false);
  EXPECT_FALSE(f.get_bit(0));
}

TEST(TruthTable, NthVarMatchesDefinition) {
  for (unsigned n = 1; n <= 8; ++n) {
    for (unsigned v = 0; v < n; ++v) {
      const auto x = truth_table::nth_var(n, v);
      const auto nx = truth_table::nth_var(n, v, /*complemented=*/true);
      for (std::uint64_t t = 0; t < x.num_bits(); ++t) {
        EXPECT_EQ(x.get_bit(t), ((t >> v) & 1) != 0);
        EXPECT_EQ(nx.get_bit(t), ((t >> v) & 1) == 0);
      }
    }
  }
}

TEST(TruthTable, BooleanOperators) {
  const unsigned n = 5;
  const auto a = truth_table::nth_var(n, 0);
  const auto b = truth_table::nth_var(n, 3);
  const auto f = (a & b) | (~a & ~b);  // XNOR
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    const bool av = (t >> 0) & 1;
    const bool bv = (t >> 3) & 1;
    EXPECT_EQ(f.get_bit(t), av == bv);
  }
  EXPECT_EQ(a ^ b, ~f);
}

TEST(TruthTable, HexRoundTrip) {
  const auto f = truth_table::from_hex(4, "0x8ff8");
  EXPECT_EQ(f.to_hex(), "0x8ff8");
  // 0x8ff8 is (x0 & x1) | (x2 ^ x3) in the paper's (a,b,c,d) = (x0..x3)
  // reading (Example 7).
  const auto a = truth_table::nth_var(4, 0);
  const auto b = truth_table::nth_var(4, 1);
  const auto c = truth_table::nth_var(4, 2);
  const auto d = truth_table::nth_var(4, 3);
  EXPECT_EQ(f, (a & b) | (c ^ d));
}

TEST(TruthTable, HexRoundTripLarge) {
  stpes::util::rng rng{42};
  for (int iteration = 0; iteration < 20; ++iteration) {
    truth_table f{8};
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      f.set_bit(t, rng.next_bool());
    }
    EXPECT_EQ(truth_table::from_hex(8, f.to_hex()), f);
    EXPECT_EQ(truth_table::from_binary(8, f.to_binary()), f);
  }
}

TEST(TruthTable, HexRejectsBadInput) {
  EXPECT_THROW(truth_table::from_hex(4, "0x8ff"), std::invalid_argument);
  EXPECT_THROW(truth_table::from_hex(4, "0x8fzg"), std::invalid_argument);
  EXPECT_THROW(truth_table::from_binary(2, "10"), std::invalid_argument);
}

TEST(TruthTable, CofactorsAgreeWithSemantics) {
  stpes::util::rng rng{7};
  for (unsigned n = 1; n <= 8; ++n) {
    truth_table f{n};
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      f.set_bit(t, rng.next_bool());
    }
    for (unsigned v = 0; v < n; ++v) {
      const auto f0 = f.cofactor0(v);
      const auto f1 = f.cofactor1(v);
      for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
        const std::uint64_t t0 = t & ~(std::uint64_t{1} << v);
        const std::uint64_t t1 = t | (std::uint64_t{1} << v);
        EXPECT_EQ(f0.get_bit(t), f.get_bit(t0));
        EXPECT_EQ(f1.get_bit(t), f.get_bit(t1));
      }
    }
  }
}

TEST(TruthTable, SupportDetection) {
  const unsigned n = 6;
  const auto f = truth_table::nth_var(n, 1) ^ truth_table::nth_var(n, 4);
  EXPECT_TRUE(f.has_var(1));
  EXPECT_TRUE(f.has_var(4));
  EXPECT_FALSE(f.has_var(0));
  EXPECT_FALSE(f.has_var(5));
  EXPECT_EQ(f.support_mask(), (1u << 1) | (1u << 4));
  EXPECT_EQ(f.support_size(), 2u);
}

TEST(TruthTable, SwapVariablesInvolution) {
  stpes::util::rng rng{11};
  truth_table f{6};
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    f.set_bit(t, rng.next_bool());
  }
  for (unsigned a = 0; a < 6; ++a) {
    for (unsigned b = 0; b < 6; ++b) {
      EXPECT_EQ(f.swap_variables(a, b).swap_variables(a, b), f);
    }
  }
  // Swapping in a symmetric function is the identity.
  const auto maj =
      (truth_table::nth_var(3, 0) & truth_table::nth_var(3, 1)) |
      (truth_table::nth_var(3, 0) & truth_table::nth_var(3, 2)) |
      (truth_table::nth_var(3, 1) & truth_table::nth_var(3, 2));
  EXPECT_EQ(maj.swap_variables(0, 2), maj);
}

TEST(TruthTable, FlipVariableSemantics) {
  const auto a = truth_table::nth_var(4, 2);
  EXPECT_EQ(a.flip_variable(2), ~a);
  const auto f = truth_table::from_hex(4, "0x8ff8");
  EXPECT_EQ(f.flip_variable(0).flip_variable(0), f);
}

TEST(TruthTable, PermuteMatchesRepeatedSwaps) {
  const auto f = truth_table::from_hex(4, "0xcafe");
  // Rotation (0 1 2 3) -> new var i plays role of old var perm[i].
  const auto g = f.permute({1, 2, 3, 0});
  for (std::uint64_t t = 0; t < 16; ++t) {
    std::uint64_t src = 0;
    for (unsigned i = 0; i < 4; ++i) {
      if ((t >> i) & 1) {
        src |= std::uint64_t{1} << ((i + 1) % 4);
      }
    }
    EXPECT_EQ(g.get_bit(t), f.get_bit(src));
  }
  // Identity permutation.
  EXPECT_EQ(f.permute({0, 1, 2, 3}), f);
}

TEST(TruthTable, ExtendPreservesFunction) {
  const auto f = truth_table::from_hex(3, "0xe8");  // MAJ3
  const auto g = f.extend_to(5);
  EXPECT_EQ(g.num_vars(), 5u);
  for (std::uint64_t t = 0; t < 32; ++t) {
    EXPECT_EQ(g.get_bit(t), f.get_bit(t & 7));
  }
  EXPECT_FALSE(g.has_var(3));
  EXPECT_FALSE(g.has_var(4));
}

TEST(TruthTable, ShrinkToSupport) {
  const unsigned n = 6;
  const auto f = truth_table::nth_var(n, 2) & truth_table::nth_var(n, 5);
  std::vector<unsigned> old_of_new;
  const auto g = f.shrink_to_support(&old_of_new);
  EXPECT_EQ(g.num_vars(), 2u);
  EXPECT_EQ(old_of_new, (std::vector<unsigned>{2, 5}));
  EXPECT_EQ(g, truth_table(2, 0x8));  // AND
}

TEST(TruthTable, ApplyBinaryOpCoversAll16) {
  const auto a = truth_table::nth_var(2, 0);
  const auto b = truth_table::nth_var(2, 1);
  for (unsigned op = 0; op < 16; ++op) {
    const auto f = apply_binary_op(op, a, b);
    for (std::uint64_t t = 0; t < 4; ++t) {
      const unsigned av = t & 1;
      const unsigned bv = (t >> 1) & 1;
      EXPECT_EQ(f.get_bit(t), ((op >> ((bv << 1) | av)) & 1) != 0)
          << "op " << op << " minterm " << t;
    }
  }
}

TEST(TruthTable, OrderingIsTotalAndConsistent) {
  const auto f = truth_table::from_hex(4, "0x0001");
  const auto g = truth_table::from_hex(4, "0x8000");
  EXPECT_TRUE(f < g);
  EXPECT_FALSE(g < f);
  EXPECT_FALSE(f < f);
}

TEST(TruthTable, HashDistinguishesSimpleCases) {
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto g = truth_table::from_hex(4, "0x8ff9");
  EXPECT_NE(f.hash(), g.hash());
  EXPECT_EQ(f.hash(), truth_table::from_hex(4, "0x8ff8").hash());
}

class TruthTableVarSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TruthTableVarSweep, DeMorganHoldsForRandomFunctions) {
  const unsigned n = GetParam();
  stpes::util::rng rng{1000 + n};
  for (int iteration = 0; iteration < 10; ++iteration) {
    truth_table f{n};
    truth_table g{n};
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      f.set_bit(t, rng.next_bool());
      g.set_bit(t, rng.next_bool());
    }
    EXPECT_EQ(~(f & g), ~f | ~g);
    EXPECT_EQ(~(f | g), ~f & ~g);
    EXPECT_EQ(f ^ g, (f | g) & ~(f & g));
  }
}

TEST_P(TruthTableVarSweep, ShannonExpansionHolds) {
  const unsigned n = GetParam();
  if (n == 0) {
    GTEST_SKIP();
  }
  stpes::util::rng rng{2000 + n};
  truth_table f{n};
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    f.set_bit(t, rng.next_bool());
  }
  for (unsigned v = 0; v < n; ++v) {
    const auto x = truth_table::nth_var(n, v);
    EXPECT_EQ((x & f.cofactor1(v)) | (~x & f.cofactor0(v)), f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, TruthTableVarSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

}  // namespace
