/// \file lower_bound_test.cpp
/// \brief The CNF lower-bound probe and the engine portfolio built on it.
///
/// The probe's contract: `infeasible` at gate count k (with all smaller
/// counts refuted) means *no* k-gate chain exists, `feasible` comes with a
/// verified witness chain, `unknown` is always safe to treat as feasible.
/// The portfolio engine must be a pure scheduling change: bit-identical
/// results to the sequential STP engine, with the losing side cancelled
/// promptly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/exact_synthesis.hpp"
#include "synth/lower_bound.hpp"
#include "synth/stp_synth.hpp"
#include "tt/isf.hpp"
#include "tt/npn.hpp"
#include "workload/collections.hpp"

namespace {

using stpes::core::engine;
using stpes::core::run_context;
using stpes::synth::lower_bound_options;
using stpes::synth::lower_bound_prober;
using stpes::synth::probe_verdict;
using stpes::synth::status;
using stpes::tt::isf;
using stpes::tt::truth_table;

/// Unbounded probe: no conflict cutoff, so every verdict is exact.
lower_bound_prober exact_prober() {
  lower_bound_options options;
  options.conflict_budget = 0;
  return lower_bound_prober{options};
}

TEST(LowerBoundProbe, AgreesWithStpOptimaOnAllNpn3Classes) {
  // For every NPN3 class the probe must refute exactly the gate counts
  // below the STP engine's proven optimum and accept the optimum itself —
  // the probe and the sweep answer the same existence question.
  const auto prober = exact_prober();
  for (const auto& f : stpes::tt::enumerate_npn_classes(3)) {
    if (f.is_const0() || (~f).is_const0()) {
      continue;  // degenerate: answered before the probe in the engine
    }
    const auto r = stpes::core::exact_synthesis(f, engine::stp);
    ASSERT_TRUE(r.ok()) << f.to_hex();
    if (r.optimum_gates == 0) {
      continue;  // literals: the probe is never asked about 0 gates
    }
    const auto target = isf::from_function(f);
    for (unsigned k = 1; k < r.optimum_gates; ++k) {
      EXPECT_EQ(prober.probe(target, k).verdict, probe_verdict::infeasible)
          << f.to_hex() << " at " << k << " gates";
    }
    const auto at_opt = prober.probe(target, r.optimum_gates);
    EXPECT_EQ(at_opt.verdict, probe_verdict::feasible)
        << f.to_hex() << " at optimum " << r.optimum_gates;
  }
}

TEST(LowerBoundProbe, FeasibleVerdictCarriesVerifiedWitness) {
  // MAJ3 needs 4 gates; the SAT model at the optimum decodes to a chain
  // of exactly that size computing the function.
  const auto f = truth_table::from_hex(3, "0xe8");
  const auto pr = exact_prober().probe(isf::from_function(f), 4);
  ASSERT_EQ(pr.verdict, probe_verdict::feasible);
  ASSERT_TRUE(pr.witness.has_value());
  EXPECT_EQ(pr.witness->size(), 4u);
  EXPECT_EQ(pr.witness->simulate(), f);
}

TEST(LowerBoundProbe, NonNormalTargetsAreComplementedForTheEncoding) {
  // NAND2 (row 0 = 1) is existence-equivalent to AND2; the witness must
  // come back with the output-complement flag folded in.
  const auto nand2 = ~truth_table(2, 0x8);
  const auto pr = exact_prober().probe(isf::from_function(nand2), 1);
  ASSERT_EQ(pr.verdict, probe_verdict::feasible);
  ASSERT_TRUE(pr.witness.has_value());
  EXPECT_EQ(pr.witness->simulate(), nand2);
}

TEST(LowerBoundProbe, UnsatLevelsAreSkippedAndCounted) {
  // These NPN4 classes have optima well above the trivial lower bound, so
  // the probe_sweep default must skip at least one level per run and say
  // so in the counters; the skip must not change the proven optimum.
  struct known {
    const char* hex;
    unsigned optimum;
    std::uint64_t min_unsat_levels;
  };
  for (const auto& [hex, optimum, min_unsat] :
       {known{"0x0018", 4, 1}, known{"0x0016", 5, 2}}) {
    run_context ctx;
    stpes::synth::spec s;
    s.function = truth_table::from_hex(4, hex);
    s.ctx = &ctx;
    const auto r = stpes::core::exact_synthesis(s, engine::stp);
    ASSERT_TRUE(r.ok()) << hex;
    EXPECT_EQ(r.optimum_gates, optimum) << hex;
    EXPECT_GE(r.counters.probe_unsat_levels, min_unsat) << hex;
    EXPECT_GE(r.counters.probe_calls, r.counters.probe_unsat_levels) << hex;
    // The skipped levels are exactly the refuted ones plus the accepted
    // winning level.
    EXPECT_GE(r.counters.probe_sat_levels, 1u) << hex;
  }
}

TEST(LowerBoundProbe, ProbeDisabledSweepStillAgrees) {
  // Plain sweep (no probe) on a function whose levels the probe would
  // skip: same optimum, no probe counters — the probe only skips work.
  stpes::synth::stp_options options;
  options.engine = stpes::synth::stp_level_engine::sweep;
  stpes::synth::stp_engine eng{options};
  run_context ctx;
  stpes::synth::spec s;
  s.function = truth_table::from_hex(4, "0x0018");
  s.ctx = &ctx;
  const auto r = eng.run(s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 4u);
  EXPECT_EQ(r.counters.probe_calls, 0u);
  EXPECT_EQ(r.counters.probe_unsat_levels, 0u);
}

TEST(EnginePortfolio, BitIdenticalToSequentialStpOnFixedInstances) {
  // The portfolio race only ever cancels the sweep on solution-free
  // levels, so with no deadline the chain sets must match the sequential
  // engine exactly — same chains, same order.
  std::vector<truth_table> instances = stpes::tt::enumerate_npn_classes(3);
  for (const char* hex : {"0x8ff8", "0xe8e8", "0x6996"}) {
    instances.push_back(truth_table::from_hex(4, hex));
  }
  for (const auto& f : instances) {
    const auto reference = stpes::core::exact_synthesis(f, engine::stp);
    const auto raced = stpes::core::exact_synthesis(f, engine::portfolio);
    ASSERT_EQ(raced.outcome, reference.outcome) << f.to_hex();
    if (!reference.ok()) {
      continue;
    }
    EXPECT_EQ(raced.optimum_gates, reference.optimum_gates) << f.to_hex();
    EXPECT_TRUE(raced.enumeration_complete) << f.to_hex();
    ASSERT_EQ(raced.chains.size(), reference.chains.size()) << f.to_hex();
    for (std::size_t i = 0; i < reference.chains.size(); ++i) {
      EXPECT_TRUE(raced.chains[i] == reference.chains[i])
          << f.to_hex() << " chain " << i;
    }
  }
}

TEST(EnginePortfolio, LosingProbeIsCancelledPromptly) {
  // An unbounded probe on a PDSD8 instance at a deliberately hopeless
  // gate count runs "forever"; the cancel flag must stop it within one
  // solver poll stride.
  const auto f = stpes::workload::pdsd_functions(8, 1, 1).front();
  lower_bound_options options;
  options.conflict_budget = 0;
  options.max_vars = 8;
  const lower_bound_prober prober{options};

  run_context ctx;
  stpes::synth::probe_result pr;
  std::atomic<bool> started{false};
  std::thread worker{[&] {
    started.store(true, std::memory_order_release);
    pr = prober.probe(isf::from_function(f), 10, &ctx);
  }};
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto cancel_time = std::chrono::steady_clock::now();
  ctx.request_cancel();
  worker.join();
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cancel_time)
          .count();

  EXPECT_EQ(pr.verdict, probe_verdict::unknown);
  EXPECT_FALSE(pr.witness.has_value());
  EXPECT_LT(latency, 0.1) << "probe kept running " << latency
                          << " s after the cancel flag was set";
  // probe_calls counts fences that reached solve(); on slow (sanitizer)
  // builds the cancel can land during the CNF build of the very first
  // fence, in which case it is legitimately 0 — promptness is the
  // invariant, not how far the probe got.
}

}  // namespace
