#include "chain/boolean_chain.hpp"

#include <gtest/gtest.h>

#include "synth/spec.hpp"

namespace {

using stpes::chain::boolean_chain;
using stpes::tt::truth_table;

/// The running example of the paper (Example 7): f = 0x8ff8 as
/// x7 = 0xe(x5, x6), x6 = 0x8(a, b), x5 = 0x6(c, d).
boolean_chain example7_chain() {
  boolean_chain c{4};
  const auto x4 = c.add_step(0x8, 0, 1);  // a & b
  const auto x5 = c.add_step(0x6, 2, 3);  // c ^ d
  const auto x6 = c.add_step(0xE, x4, x5);
  c.set_output(x6);
  return c;
}

TEST(BooleanChain, Example7Simulation) {
  const auto c = example7_chain();
  EXPECT_EQ(c.simulate(), truth_table::from_hex(4, "0x8ff8"));
  EXPECT_TRUE(c.is_well_formed());
  EXPECT_EQ(c.num_steps(), 3u);
  EXPECT_EQ(c.size(), 3u);
}

TEST(BooleanChain, SecondSolutionOfExample7) {
  // x7 = 0x7(x5, x6), x6 = 0x7(a, b), x5 = 0x9(c, d) — the alternative
  // solution set the paper reports for the same DAG.
  boolean_chain c{4};
  const auto x4 = c.add_step(0x7, 0, 1);
  const auto x5 = c.add_step(0x9, 2, 3);
  const auto x6 = c.add_step(0x7, x4, x5);
  c.set_output(x6);
  EXPECT_EQ(c.simulate(), truth_table::from_hex(4, "0x8ff8"));
}

TEST(BooleanChain, OutputComplement) {
  auto c = example7_chain();
  c.set_output(c.num_inputs() + c.num_steps() - 1, /*complemented=*/true);
  EXPECT_EQ(c.simulate(), ~truth_table::from_hex(4, "0x8ff8"));
}

TEST(BooleanChain, OutputCanBeAnInput) {
  boolean_chain c{3};
  c.set_output(1);
  EXPECT_EQ(c.simulate(), truth_table::nth_var(3, 1));
  c.set_output(1, true);
  EXPECT_EQ(c.simulate(), ~truth_table::nth_var(3, 1));
}

TEST(BooleanChain, DepthAndCosts) {
  const auto c = example7_chain();
  EXPECT_EQ(c.depth(), 2u);
  EXPECT_EQ(c.xor_count(), 1u);                   // the 0x6 step
  EXPECT_EQ(c.nontrivial_polarity_count(), 1u);   // only XOR is non-unate
  boolean_chain linear{3};
  auto s = linear.add_step(0x8, 0, 1);
  s = linear.add_step(0x8, s, 2);
  linear.set_output(s);
  EXPECT_EQ(linear.depth(), 2u);
  EXPECT_EQ(linear.xor_count(), 0u);
}

TEST(BooleanChain, RejectsForwardReferences) {
  boolean_chain c{2};
  EXPECT_THROW(c.add_step(0x8, 0, 2), std::invalid_argument);
  EXPECT_THROW(c.set_output(5), std::invalid_argument);
}

TEST(BooleanChain, SimulateAllExposesIntermediateSignals) {
  const auto c = example7_chain();
  const auto signals = c.simulate_all();
  ASSERT_EQ(signals.size(), 7u);
  EXPECT_EQ(signals[0], truth_table::nth_var(4, 0));
  EXPECT_EQ(signals[4],
            truth_table::nth_var(4, 0) & truth_table::nth_var(4, 1));
  EXPECT_EQ(signals[5],
            truth_table::nth_var(4, 2) ^ truth_table::nth_var(4, 3));
}

TEST(BooleanChain, ToStringMirrorsPaperNotation) {
  const auto text = example7_chain().to_string();
  EXPECT_NE(text.find("x4 = 0x8(x0, x1)"), std::string::npos);
  EXPECT_NE(text.find("x5 = 0x6(x2, x3)"), std::string::npos);
  EXPECT_NE(text.find("x6 = 0xe(x4, x5)"), std::string::npos);
  EXPECT_NE(text.find("f = x6"), std::string::npos);
}

TEST(BooleanChain, DotRenderingContainsAllNodes) {
  const auto dot = example7_chain().to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("x6 -> out"), std::string::npos);
}

TEST(BooleanChain, HashAndEquality) {
  const auto a = example7_chain();
  const auto b = example7_chain();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  auto c = example7_chain();
  c.set_output(c.output(), true);
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(ChainLifting, LiftToOriginalInputs) {
  // Chain over the shrunk support {0, 1} of a function whose original
  // support was {1, 3} in a 4-input space.
  boolean_chain shrunk{2};
  const auto s = shrunk.add_step(0x8, 0, 1);
  shrunk.set_output(s);
  const auto lifted =
      stpes::synth::lift_chain_to_original(shrunk, {1, 3}, 4);
  EXPECT_EQ(lifted.num_inputs(), 4u);
  EXPECT_EQ(lifted.simulate(),
            stpes::tt::truth_table::nth_var(4, 1) &
                stpes::tt::truth_table::nth_var(4, 3));
}

TEST(ChainDegenerate, ConstantAndLiteralHelpers) {
  stpes::synth::result out;
  EXPECT_TRUE(stpes::synth::synthesize_degenerate(
      truth_table::constant(3, true), out));
  EXPECT_TRUE(out.ok());
  EXPECT_TRUE(out.best().simulate().is_const1());

  EXPECT_TRUE(stpes::synth::synthesize_degenerate(
      ~truth_table::nth_var(4, 2), out));
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.optimum_gates, 0u);
  EXPECT_EQ(out.best().simulate(), ~truth_table::nth_var(4, 2));

  EXPECT_FALSE(stpes::synth::synthesize_degenerate(
      truth_table::from_hex(4, "0x8ff8"), out));
}

TEST(ChainBounds, TrivialLowerBound) {
  EXPECT_EQ(stpes::synth::trivial_lower_bound(truth_table::constant(4, false)),
            0u);
  EXPECT_EQ(stpes::synth::trivial_lower_bound(truth_table::nth_var(4, 0)),
            0u);
  EXPECT_EQ(
      stpes::synth::trivial_lower_bound(truth_table::from_hex(4, "0x8ff8")),
      3u);
}

}  // namespace
