/// \file aig_test.cpp
/// \brief `aig_network` invariants: literal helpers, constant folding and
///        structural hashing in `create_and`, the derived connectives, the
///        word-parallel and exhaustive simulators, and cone extraction.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"

namespace {

using stpes::aig::aig_network;
using stpes::aig::lit_complemented;
using stpes::aig::lit_false;
using stpes::aig::lit_not;
using stpes::aig::lit_true;
using stpes::aig::lit_var;
using stpes::aig::literal;
using stpes::aig::make_lit;
using stpes::tt::truth_table;

TEST(Aig, LiteralHelpersFollowTheAigerConvention) {
  EXPECT_EQ(lit_var(lit_false), 0u);
  EXPECT_EQ(lit_var(lit_true), 0u);
  EXPECT_FALSE(lit_complemented(lit_false));
  EXPECT_TRUE(lit_complemented(lit_true));
  EXPECT_EQ(make_lit(3), 6u);
  EXPECT_EQ(make_lit(3, true), 7u);
  EXPECT_EQ(lit_not(make_lit(3)), make_lit(3, true));
  EXPECT_EQ(lit_var(make_lit(7, true)), 7u);
}

TEST(Aig, CreateAndFoldsConstantsAndTrivialPairs) {
  aig_network net{2};
  const literal a = net.input_lit(0);
  const literal b = net.input_lit(1);
  EXPECT_EQ(net.create_and(a, lit_false), lit_false);
  EXPECT_EQ(net.create_and(lit_false, b), lit_false);
  EXPECT_EQ(net.create_and(a, lit_true), a);
  EXPECT_EQ(net.create_and(lit_true, b), b);
  EXPECT_EQ(net.create_and(a, a), a);
  EXPECT_EQ(net.create_and(a, lit_not(a)), lit_false);
  EXPECT_EQ(net.create_and(lit_not(b), lit_not(b)), lit_not(b));
  // None of the folds created a node.
  EXPECT_EQ(net.num_ands(), 0u);
}

TEST(Aig, StructuralHashingDeduplicatesCommutedPairs) {
  aig_network net{2};
  const literal a = net.input_lit(0);
  const literal b = net.input_lit(1);
  const literal ab = net.create_and(a, b);
  EXPECT_EQ(net.num_ands(), 1u);
  // Same pair, both orders, and with complemented fanins as a distinct key.
  EXPECT_EQ(net.create_and(a, b), ab);
  EXPECT_EQ(net.create_and(b, a), ab);
  EXPECT_EQ(net.num_ands(), 1u);
  EXPECT_EQ(net.strash_hits(), 2u);
  const literal nab = net.create_and(lit_not(a), lit_not(b));
  EXPECT_NE(nab, ab);
  EXPECT_EQ(net.num_ands(), 2u);
  // The stored node is pair-normalized: fanin0 >= fanin1 as literals.
  for (const auto& nd : net.nodes()) {
    EXPECT_GE(nd.fanin0, nd.fanin1);
  }
  EXPECT_TRUE(net.is_well_formed());
}

TEST(Aig, DerivedConnectivesSimulateCorrectly) {
  aig_network net{3};
  const literal a = net.input_lit(0);
  const literal b = net.input_lit(1);
  const literal c = net.input_lit(2);
  net.add_output(net.create_and(a, b));
  net.add_output(net.create_or(a, b));
  net.add_output(net.create_xor(a, b));
  net.add_output(net.create_mux(a, b, c));
  net.add_output(lit_not(net.create_xor(a, b)));

  const auto tts = net.simulate();
  ASSERT_EQ(tts.size(), 5u);
  // 3-var tables over inputs (a, b, c); bit index = c<<2 | b<<1 | a.
  EXPECT_EQ(tts[0], truth_table(3, 0x88));  // a & b
  EXPECT_EQ(tts[1], truth_table(3, 0xEE));  // a | b
  EXPECT_EQ(tts[2], truth_table(3, 0x66));  // a ^ b
  EXPECT_EQ(tts[3], truth_table(3, 0xD8));  // a ? b : c
  EXPECT_EQ(tts[4], truth_table(3, 0x99));  // !(a ^ b)
}

TEST(Aig, SimulateWordsMatchesExhaustiveSimulation) {
  aig_network net{2};
  const literal a = net.input_lit(0);
  const literal b = net.input_lit(1);
  const literal x = net.create_xor(a, b);
  net.add_output(x);

  // Drive the word simulator with the exhaustive patterns of 2 inputs in
  // the low 4 bits: input i's word is the truth table of variable i.
  const std::vector<std::vector<std::uint64_t>> inputs{{0xAull}, {0xCull}};
  const auto rows = net.simulate_words(inputs);
  ASSERT_EQ(rows.size(), net.max_var() + 1);
  EXPECT_EQ(rows[0][0], 0ull);          // constant false row
  EXPECT_EQ(rows[1][0] & 0xF, 0xAull);  // input a
  EXPECT_EQ(rows[2][0] & 0xF, 0xCull);  // input b
  const std::uint64_t out_word =
      rows[lit_var(x)][0] ^ (lit_complemented(x) ? ~0ull : 0ull);
  EXPECT_EQ(out_word & 0xF, 0x6ull);  // a ^ b
}

TEST(Aig, ConeCollectsExactlyTheTransitiveFanin) {
  aig_network net{3};
  const literal a = net.input_lit(0);
  const literal b = net.input_lit(1);
  const literal c = net.input_lit(2);
  const literal ab = net.create_and(a, b);
  const literal bc = net.create_and(b, c);
  net.add_output(ab);
  net.add_output(bc);

  // The cone of (a & b) holds inputs a, b and the node itself, not c.
  const auto cone = net.cone({lit_var(ab)});
  EXPECT_EQ(cone, (std::vector<std::uint32_t>{1, 2, lit_var(ab)}));
  // A joint cone over both roots covers everything except variable 0.
  const auto both = net.cone({lit_var(ab), lit_var(bc)});
  EXPECT_EQ(both.size(), 5u);
  EXPECT_TRUE(net.is_well_formed());
}

TEST(Aig, MaxVarAndAccessorsStayConsistent) {
  aig_network net{4};
  EXPECT_EQ(net.num_inputs(), 4u);
  EXPECT_EQ(net.max_var(), 4u);
  const literal n =
      net.create_and(net.input_lit(0), net.input_lit(3));
  EXPECT_EQ(net.max_var(), 5u);
  EXPECT_TRUE(net.is_and(lit_var(n)));
  EXPECT_FALSE(net.is_input(lit_var(n)));
  EXPECT_TRUE(net.is_input(1));
  EXPECT_FALSE(net.is_and(1));
  EXPECT_FALSE(net.is_input(0));
  EXPECT_FALSE(net.is_and(0));
  EXPECT_EQ(net.node(lit_var(n)).fanin0, net.input_lit(3));
  EXPECT_EQ(net.node(lit_var(n)).fanin1, net.input_lit(0));
}

}  // namespace
