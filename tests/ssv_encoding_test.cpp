#include "synth/ssv_encoding.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using stpes::sat::solve_result;
using stpes::sat::solver;
using stpes::synth::all_fanin_pairs;
using stpes::synth::ssv_encoding;
using stpes::tt::truth_table;

TEST(SsvEncoding, FaninPairCounts) {
  const auto pairs = all_fanin_pairs(3, 2);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].size(), 3u);  // C(3,2)
  EXPECT_EQ(pairs[1].size(), 6u);  // C(4,2)
  for (const auto& [j, k] : pairs[1]) {
    EXPECT_LT(j, k);
    EXPECT_LT(k, 4u);
  }
}

TEST(SsvEncoding, SynthesizesAnd2WithOneStep) {
  const auto f = truth_table(2, 0x8);
  solver s;
  ssv_encoding enc{s, f, 1};
  enc.encode_structure();
  enc.encode_all_rows();
  ASSERT_EQ(s.solve(), solve_result::sat);
  const auto chain = enc.extract_chain(false);
  EXPECT_EQ(chain.num_steps(), 1u);
  EXPECT_EQ(chain.simulate(), f);
}

TEST(SsvEncoding, Xor2NeedsANonNormalTrick) {
  // XOR2 is normal (f(00) = 0) and synthesizable in one step.
  const auto f = truth_table(2, 0x6);
  solver s;
  ssv_encoding enc{s, f, 1};
  enc.encode_structure();
  enc.encode_all_rows();
  ASSERT_EQ(s.solve(), solve_result::sat);
  EXPECT_EQ(enc.extract_chain(false).simulate(), f);
}

TEST(SsvEncoding, InfeasibleSizeIsUnsat) {
  // 0x8ff8 needs 3 steps; 2 must be UNSAT.
  const auto f = truth_table::from_hex(4, "0x8ff8");
  solver s;
  ssv_encoding enc{s, f, 2};
  enc.encode_structure();
  enc.encode_all_rows();
  EXPECT_EQ(s.solve(), solve_result::unsat);
}

TEST(SsvEncoding, FeasibleSizeProducesCorrectChain) {
  const auto f = truth_table::from_hex(4, "0x8ff8");
  solver s;
  ssv_encoding enc{s, f, 3};
  enc.encode_structure();
  enc.encode_all_rows();
  ASSERT_EQ(s.solve(), solve_result::sat);
  const auto chain = enc.extract_chain(false);
  EXPECT_EQ(chain.simulate(), f);
  EXPECT_TRUE(chain.is_well_formed());
}

TEST(SsvEncoding, ComplementFlagLiftsNonNormalTargets) {
  // NAND is not normal; synthesize the complement with the flag set.
  const auto f = truth_table(2, 0x7);
  const auto normal = ~f;
  solver s;
  ssv_encoding enc{s, normal, 1};
  enc.encode_structure();
  enc.encode_all_rows();
  ASSERT_EQ(s.solve(), solve_result::sat);
  const auto chain = enc.extract_chain(/*output_complemented=*/true);
  EXPECT_EQ(chain.simulate(), f);
}

TEST(SsvEncoding, LazyRowsRelaxation) {
  const auto f = truth_table::from_hex(3, "0x96");  // XOR3, needs 2 steps
  solver s;
  ssv_encoding enc{s, f, 2};
  enc.encode_structure();
  enc.encode_row(1);
  ASSERT_EQ(s.solve(), solve_result::sat);  // relaxation satisfiable
  // Adding all rows keeps it satisfiable (2 steps suffice) and the chain
  // is then exactly XOR3.
  enc.encode_all_rows();
  ASSERT_EQ(s.solve(), solve_result::sat);
  EXPECT_EQ(enc.extract_chain(false).simulate(), f);
}

TEST(SsvEncoding, RestrictedPairsForbidSolutions) {
  // Allow only input pairs (no step-to-step wiring): XOR3 with 2 steps
  // becomes infeasible because the second step cannot read the first.
  const auto f = truth_table::from_hex(3, "0x96");
  std::vector<std::vector<std::pair<unsigned, unsigned>>> pairs(2);
  for (unsigned k = 1; k < 3; ++k) {
    for (unsigned j = 0; j < k; ++j) {
      pairs[0].emplace_back(j, k);
      pairs[1].emplace_back(j, k);
    }
  }
  solver s;
  ssv_encoding enc{s, f, 2, pairs};
  enc.encode_structure();
  enc.encode_all_rows();
  EXPECT_EQ(s.solve(), solve_result::unsat);
}

TEST(SsvEncoding, RandomNormalFunctionsRoundTrip) {
  stpes::util::rng rng{31337};
  int done = 0;
  while (done < 8) {
    truth_table f{3, rng.next_u64() & 0xFE};  // bit 0 clear: normal
    if (f.support_size() != 3) {
      continue;
    }
    // Find the optimum by increasing size; extracted chain must simulate
    // back to f.
    for (unsigned steps = 2; steps <= 5; ++steps) {
      solver s;
      ssv_encoding enc{s, f, steps};
      enc.encode_structure();
      enc.encode_all_rows();
      if (s.solve() == solve_result::sat) {
        EXPECT_EQ(enc.extract_chain(false).simulate(), f) << f.to_hex();
        break;
      }
      EXPECT_LT(steps, 5u) << "no chain found for " << f.to_hex();
    }
    ++done;
  }
}

}  // namespace
