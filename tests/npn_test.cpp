#include "tt/npn.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace {

using stpes::tt::apply_npn_transform;
using stpes::tt::enumerate_npn_classes;
using stpes::tt::exact_npn_canonize;
using stpes::tt::npn_transform;
using stpes::tt::truth_table;

TEST(Npn, TransformGroupSize) {
  EXPECT_EQ(stpes::tt::all_npn_transforms(0).size(), 2u);
  EXPECT_EQ(stpes::tt::all_npn_transforms(1).size(), 4u);
  EXPECT_EQ(stpes::tt::all_npn_transforms(2).size(), 16u);
  EXPECT_EQ(stpes::tt::all_npn_transforms(3).size(), 96u);
  EXPECT_EQ(stpes::tt::all_npn_transforms(4).size(), 768u);
}

TEST(Npn, ApplyIdentityTransform) {
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const npn_transform identity{{0, 1, 2, 3}, 0, false};
  EXPECT_EQ(apply_npn_transform(f, identity), f);
}

TEST(Npn, OutputNegation) {
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const npn_transform neg_out{{0, 1, 2, 3}, 0, true};
  EXPECT_EQ(apply_npn_transform(f, neg_out), ~f);
}

TEST(Npn, InputNegationMatchesFlip) {
  const auto f = truth_table::from_hex(4, "0xcafe");
  const npn_transform neg_in{{0, 1, 2, 3}, 0b0100, false};
  EXPECT_EQ(apply_npn_transform(f, neg_in), f.flip_variable(2));
}

TEST(Npn, CanonizationIsIdempotent) {
  stpes::util::rng rng{5};
  for (int iteration = 0; iteration < 20; ++iteration) {
    truth_table f{4, rng.next_u64() & 0xFFFF};
    const auto canon = exact_npn_canonize(f);
    const auto canon2 = exact_npn_canonize(canon.canonical);
    EXPECT_EQ(canon.canonical, canon2.canonical);
  }
}

TEST(Npn, CanonizationWitnessTransformIsCorrect) {
  stpes::util::rng rng{6};
  for (int iteration = 0; iteration < 20; ++iteration) {
    truth_table f{4, rng.next_u64() & 0xFFFF};
    const auto canon = exact_npn_canonize(f);
    EXPECT_EQ(apply_npn_transform(f, canon.transform), canon.canonical);
  }
}

TEST(Npn, EquivalentFunctionsCanonizeEqually) {
  stpes::util::rng rng{7};
  const auto transforms = stpes::tt::all_npn_transforms(4);
  for (int iteration = 0; iteration < 10; ++iteration) {
    truth_table f{4, rng.next_u64() & 0xFFFF};
    const auto canonical = exact_npn_canonize(f).canonical;
    // Every orbit member canonizes to the same representative.
    for (int k = 0; k < 5; ++k) {
      const auto& t = transforms[rng.next_below(transforms.size())];
      const auto member = apply_npn_transform(f, t);
      EXPECT_EQ(exact_npn_canonize(member).canonical, canonical);
    }
  }
}

TEST(Npn, CanonicalIsMinimalInOrbit) {
  stpes::util::rng rng{8};
  const auto transforms = stpes::tt::all_npn_transforms(3);
  for (int iteration = 0; iteration < 10; ++iteration) {
    truth_table f{3, rng.next_u64() & 0xFF};
    const auto canonical = exact_npn_canonize(f).canonical;
    for (const auto& t : transforms) {
      const auto member = apply_npn_transform(f, t);
      EXPECT_FALSE(member < canonical);
    }
  }
}

TEST(Npn, ClassCountsMatchLiterature) {
  // Known NPN class counts: n=0: 1 (constant 0 class), n=1: 2, n=2: 4,
  // n=3: 14, n=4: 222 (the paper's NPN4 collection).
  EXPECT_EQ(enumerate_npn_classes(0).size(), 1u);
  EXPECT_EQ(enumerate_npn_classes(1).size(), 2u);
  EXPECT_EQ(enumerate_npn_classes(2).size(), 4u);
  EXPECT_EQ(enumerate_npn_classes(3).size(), 14u);
  EXPECT_EQ(enumerate_npn_classes(4).size(), 222u);
}

TEST(Npn, RepresentativesAreCanonicalAndDistinct) {
  const auto classes = enumerate_npn_classes(3);
  std::set<std::string> seen;
  for (const auto& representative : classes) {
    EXPECT_EQ(exact_npn_canonize(representative).canonical, representative);
    EXPECT_TRUE(seen.insert(representative.to_hex()).second);
  }
}

TEST(Npn, EveryFunctionBelongsToExactlyOneClass) {
  const auto classes = enumerate_npn_classes(2);
  for (std::uint64_t value = 0; value < 16; ++value) {
    const truth_table f{2, value};
    const auto canonical = exact_npn_canonize(f).canonical;
    int hits = 0;
    for (const auto& representative : classes) {
      if (representative == canonical) {
        ++hits;
      }
    }
    EXPECT_EQ(hits, 1) << "function " << f.to_hex();
  }
}

}  // namespace
