#include "tt/dsd.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using stpes::tt::analyze_dsd;
using stpes::tt::dsd_kind;
using stpes::tt::is_fully_dsd;
using stpes::tt::is_prime;
using stpes::tt::truth_table;

TEST(Dsd, ConstantsAndLiterals) {
  EXPECT_EQ(analyze_dsd(truth_table::constant(4, false)).kind,
            dsd_kind::constant);
  EXPECT_EQ(analyze_dsd(truth_table::constant(4, true)).kind,
            dsd_kind::constant);
  EXPECT_EQ(analyze_dsd(truth_table::nth_var(4, 2)).kind, dsd_kind::literal);
  EXPECT_EQ(analyze_dsd(~truth_table::nth_var(4, 0)).kind,
            dsd_kind::literal);
}

TEST(Dsd, TwoInputFunctionsAreFull) {
  for (unsigned op = 0; op < 16; ++op) {
    const auto f = stpes::tt::apply_binary_op(op, truth_table::nth_var(2, 0),
                                              truth_table::nth_var(2, 1));
    const auto kind = analyze_dsd(f).kind;
    EXPECT_TRUE(kind == dsd_kind::full || kind == dsd_kind::literal ||
                kind == dsd_kind::constant);
  }
}

TEST(Dsd, BalancedTreeIsFullyDsd) {
  // (x0 & x1) | (x2 ^ x3): the running example of the paper (0x8ff8).
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto analysis = analyze_dsd(f);
  EXPECT_EQ(analysis.kind, dsd_kind::full);
  EXPECT_TRUE(is_fully_dsd(f));
}

TEST(Dsd, LinearChainIsFullyDsd) {
  // ((((x0 & x1) | x2) ^ x3) & x4)
  const unsigned n = 5;
  auto f = truth_table::nth_var(n, 0) & truth_table::nth_var(n, 1);
  f = f | truth_table::nth_var(n, 2);
  f = f ^ truth_table::nth_var(n, 3);
  f = f & truth_table::nth_var(n, 4);
  EXPECT_TRUE(is_fully_dsd(f));
}

TEST(Dsd, WideXorIsFullyDsd) {
  auto f = truth_table::nth_var(6, 0);
  for (unsigned v = 1; v < 6; ++v) {
    f = f ^ truth_table::nth_var(6, v);
  }
  EXPECT_TRUE(is_fully_dsd(f));
}

TEST(Dsd, Maj3IsPrime) {
  const auto maj = truth_table::from_hex(3, "0xe8");
  const auto analysis = analyze_dsd(maj);
  EXPECT_EQ(analysis.kind, dsd_kind::none);
  EXPECT_TRUE(is_prime(maj));
  EXPECT_EQ(analysis.residue_support, 3u);
}

TEST(Dsd, MuxIsPrime) {
  // x2 ? x1 : x0 — the 2:1 multiplexer is not disjoint-decomposable.
  const auto x0 = truth_table::nth_var(3, 0);
  const auto x1 = truth_table::nth_var(3, 1);
  const auto s = truth_table::nth_var(3, 2);
  const auto mux = (s & x1) | (~s & x0);
  EXPECT_TRUE(is_prime(mux));
}

TEST(Dsd, PartialDsdDetected) {
  // MAJ3(x0, x1, x2) & x3: one contraction possible (top AND), prime core.
  const auto maj = truth_table::from_hex(3, "0xe8").extend_to(4);
  const auto f = maj & truth_table::nth_var(4, 3);
  const auto analysis = analyze_dsd(f);
  EXPECT_EQ(analysis.kind, dsd_kind::partial);
  EXPECT_EQ(analysis.residue_support, 3u);
  EXPECT_GE(analysis.contractions, 1u);
}

TEST(Dsd, PartialDsdWithXorWrapper) {
  // MUX(x2; x1, x0) ^ x3 ^ x4: two contractions, prime residue of 3 vars.
  const unsigned n = 5;
  const auto x0 = truth_table::nth_var(n, 0);
  const auto x1 = truth_table::nth_var(n, 1);
  const auto s = truth_table::nth_var(n, 2);
  const auto mux = (s & x1) | (~s & x0);
  const auto f = mux ^ truth_table::nth_var(n, 3) ^ truth_table::nth_var(n, 4);
  const auto analysis = analyze_dsd(f);
  EXPECT_EQ(analysis.kind, dsd_kind::partial);
  EXPECT_EQ(analysis.residue_support, 3u);
}

TEST(Dsd, ResidueOfFullDsdIsSmall) {
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto analysis = analyze_dsd(f);
  EXPECT_LE(analysis.residue_support, 2u);
  EXPECT_EQ(analysis.original_support, 4u);
}

TEST(Dsd, RandomTreesAreAlwaysFullyDsd) {
  stpes::util::rng rng{31};
  // Build random read-once trees: every such function must classify full.
  for (int iteration = 0; iteration < 50; ++iteration) {
    const unsigned n = 2 + static_cast<unsigned>(rng.next_below(5));
    std::vector<truth_table> nodes;
    for (unsigned v = 0; v < n; ++v) {
      nodes.push_back(truth_table::nth_var(n, v, rng.next_bool()));
    }
    while (nodes.size() > 1) {
      const std::size_t i = rng.next_below(nodes.size());
      auto a = nodes[i];
      nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t j = rng.next_below(nodes.size());
      auto b = nodes[j];
      static constexpr unsigned kOps[] = {0x8, 0xE, 0x6, 0x1, 0x7, 0x9};
      const auto op = kOps[rng.next_below(6)];
      nodes[j] = stpes::tt::apply_binary_op(op, a, b);
    }
    EXPECT_TRUE(is_fully_dsd(nodes[0]))
        << "iteration " << iteration << " tt " << nodes[0].to_hex();
  }
}

TEST(Dsd, ToStringCoversAllKinds) {
  EXPECT_STREQ(stpes::tt::to_string(dsd_kind::constant), "constant");
  EXPECT_STREQ(stpes::tt::to_string(dsd_kind::literal), "literal");
  EXPECT_STREQ(stpes::tt::to_string(dsd_kind::full), "full");
  EXPECT_STREQ(stpes::tt::to_string(dsd_kind::partial), "partial");
  EXPECT_STREQ(stpes::tt::to_string(dsd_kind::none), "none");
}

}  // namespace
