/// \file parallel_synth_test.cpp
/// \brief The parallel DAG sweep must be invisible in the results.
///
/// The STP engine fans candidate DAGs out over a thread pool in fixed
/// contiguous chunks with an in-order commit protocol, so the complete
/// optimum-chain set — order included — and, with `max_solutions == 0`,
/// every effort counter must be bit-identical at any thread count.  These
/// tests pin that contract for 1 vs 2 vs 8 threads across a spread of
/// NPN4 classes and a 5-input function whose search spans several chunks.
/// They are also the tests the CI TSan job runs to prove the sweep is
/// data-race-free.
///
/// The hardest NPN4 classes burn minutes even on the improved engine, so
/// each class first runs sequentially under a short budget and is skipped
/// on timeout: determinism is a property of completed sweeps, and the
/// comparison only makes sense when the baseline finished.  A floor on
/// the number of compared classes keeps the skip path honest.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "synth/spec.hpp"
#include "synth/stp_synth.hpp"
#include "tt/truth_table.hpp"
#include "util/run_context.hpp"
#include "workload/collections.hpp"

namespace {

using stpes::core::run_context;
using stpes::synth::result;
using stpes::synth::spec;
using stpes::synth::status;
using stpes::synth::stp_engine;
using stpes::synth::stp_options;
using stpes::tt::truth_table;

/// Renders every chain of a result, in order — the comparison key for
/// "bit-identical solution set".
std::vector<std::string> chain_strings(const result& r) {
  std::vector<std::string> out;
  out.reserve(r.chains.size());
  for (const auto& c : r.chains) {
    out.push_back(c.to_string());
  }
  return out;
}

result run_with_threads(const truth_table& f, unsigned num_threads,
                        double budget_seconds) {
  stp_options options;
  options.num_threads = num_threads;
  options.max_solutions = 0;  // enumerate all => counters comparable too
  stp_engine engine{options};
  run_context ctx{budget_seconds};
  spec s;
  s.function = f;
  s.ctx = &ctx;
  return engine.run(s);
}

/// Full-strength comparison: solution set, order, and every effort
/// counter the parallel sweep touches.
void expect_identical(const result& base, const result& other,
                      unsigned threads, const std::string& label) {
  ASSERT_EQ(base.outcome, other.outcome) << label << " @" << threads;
  ASSERT_EQ(base.enumeration_complete, other.enumeration_complete)
      << label << " @" << threads;
  EXPECT_EQ(base.optimum_gates, other.optimum_gates)
      << label << " @" << threads;
  EXPECT_EQ(chain_strings(base), chain_strings(other))
      << label << " @" << threads;
  EXPECT_EQ(base.counters.dags_generated, other.counters.dags_generated)
      << label << " @" << threads;
  EXPECT_EQ(base.counters.dags_pruned, other.counters.dags_pruned)
      << label << " @" << threads;
  EXPECT_EQ(base.counters.factorization_attempts,
            other.counters.factorization_attempts)
      << label << " @" << threads;
  EXPECT_EQ(base.counters.factorization_prunes,
            other.counters.factorization_prunes)
      << label << " @" << threads;
  EXPECT_EQ(base.counters.factor_memo_hits, other.counters.factor_memo_hits)
      << label << " @" << threads;
  EXPECT_EQ(base.counters.factor_memo_misses,
            other.counters.factor_memo_misses)
      << label << " @" << threads;
  EXPECT_EQ(base.counters.allsat_propagations,
            other.counters.allsat_propagations)
      << label << " @" << threads;
}

TEST(ParallelSynth, Npn4ChainsAndCountersBitIdenticalAcrossThreadCounts) {
  constexpr double kBudget = 3.0;
  const auto functions = stpes::workload::npn4_classes();
  ASSERT_FALSE(functions.empty());
  std::size_t compared = 0;
  // Every 8th class crosses trivial, medium and hard representatives;
  // classes whose sequential sweep blows the short budget — a timeout, or
  // a deadline-cut partial success — are skipped: a cut sweep's chain set
  // and counters depend on where the wall clock landed, so only complete
  // enumerations carry the bit-identical guarantee.
  for (std::size_t i = 0; i < functions.size(); i += 8) {
    const auto& f = functions[i];
    const result base = run_with_threads(f, 1, kBudget);
    if (base.outcome != status::success || !base.enumeration_complete) {
      continue;
    }
    for (const unsigned threads : {2u, 8u}) {
      const result r = run_with_threads(f, threads, kBudget * 4);
      expect_identical(base, r, threads, "npn4[" + std::to_string(i) + "]");
    }
    ++compared;
  }
  // If almost everything timed out the test silently proved nothing —
  // fail loudly instead.  Well over half the classes solve in well under
  // a second each on the word-parallel kernels.
  EXPECT_GE(compared, 10u);
}

TEST(ParallelSynth, SixInputFunctionMatchesAcrossThreadCounts) {
  // 6-input fully-DSD functions: their winning level carries 66 candidate
  // DAGs, one more than a chunk, so the sweep provably crosses a chunk
  // boundary and the factorization memo is actually shared between tasks
  // — while (unlike the prime-block PDSD pool) still finishing in
  // milliseconds on a slow single-core host.
  const auto functions = stpes::workload::fdsd_functions(6, 3, 1);
  ASSERT_FALSE(functions.empty());
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const auto& f = functions[i];
    const result base = run_with_threads(f, 1, 60.0);
    ASSERT_EQ(base.outcome, status::success) << "fdsd6[" << i << "]";
    ASSERT_TRUE(base.enumeration_complete) << "fdsd6[" << i << "]";
    ASSERT_FALSE(base.chains.empty());
    EXPECT_GT(base.counters.dags_generated, 64u)
        << "fdsd6[" << i << "]: sweep no longer spans multiple chunks";

    for (const unsigned threads : {2u, 8u}) {
      const result r = run_with_threads(f, threads, 240.0);
      expect_identical(base, r, threads, "fdsd6[" + std::to_string(i) + "]");
    }
  }
}

TEST(ParallelSynth, ZeroThreadsMeansHardwareConcurrencyAndStaysIdentical) {
  // num_threads == 0 resolves to one worker per hardware thread; whatever
  // that resolves to on the host, the result contract is unchanged.  Scan
  // for the first class that completes quickly sequentially.
  const auto functions = stpes::workload::npn4_classes();
  for (std::size_t i = 0; i < functions.size() && i < 32; ++i) {
    const result base = run_with_threads(functions[i], 1, 3.0);
    if (base.outcome != status::success || !base.enumeration_complete) {
      continue;
    }
    const result r = run_with_threads(functions[i], 0, 60.0);
    expect_identical(base, r, 0, "npn4[" + std::to_string(i) + "]");
    return;
  }
  FAIL() << "no NPN4 class solved within the scan budget";
}

}  // namespace
