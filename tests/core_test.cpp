#include "core/selector.hpp"

#include <gtest/gtest.h>

#include "core/exact_synthesis.hpp"

namespace {

using stpes::chain::boolean_chain;
using stpes::core::best_chain;
using stpes::core::select_best;
using stpes::tt::truth_table;

boolean_chain xor_heavy_chain() {
  // x0 ^ x1 built as-is.
  boolean_chain c{2};
  c.set_output(c.add_step(0x6, 0, 1));
  return c;
}

boolean_chain deep_and_chain() {
  // (x0 & x1) & (x0 & x1): silly but deep and XOR-free.
  boolean_chain c{2};
  const auto a = c.add_step(0x8, 0, 1);
  const auto b = c.add_step(0xE, a, 0);
  c.set_output(c.add_step(0x8, a, b));
  return c;
}

TEST(Selector, GateCountPrefersSmaller) {
  const std::vector<boolean_chain> chains{deep_and_chain(),
                                          xor_heavy_chain()};
  EXPECT_EQ(select_best(chains, stpes::core::gate_count_cost()), 1u);
}

TEST(Selector, XorCostPrefersXorFree) {
  const std::vector<boolean_chain> chains{xor_heavy_chain(),
                                          deep_and_chain()};
  EXPECT_EQ(select_best(chains, stpes::core::xor_cost()), 1u);
}

TEST(Selector, DepthCost) {
  const std::vector<boolean_chain> chains{deep_and_chain(),
                                          xor_heavy_chain()};
  EXPECT_EQ(select_best(chains, stpes::core::depth_cost()), 1u);
}

TEST(Selector, PolarityCost) {
  boolean_chain nand_chain{2};
  nand_chain.set_output(nand_chain.add_step(0x7, 0, 1));
  boolean_chain and_chain{2};
  and_chain.set_output(and_chain.add_step(0x8, 0, 1));
  const std::vector<boolean_chain> chains{nand_chain, and_chain};
  EXPECT_EQ(select_best(chains, stpes::core::polarity_cost()), 1u);
}

TEST(Selector, WeightedCostCombines) {
  const std::vector<boolean_chain> chains{xor_heavy_chain(),
                                          deep_and_chain()};
  // Pure-depth weighting picks the shallow chain; pure-xor weighting the
  // xor-free one.
  EXPECT_EQ(select_best(chains, stpes::core::weighted_cost(1, 0, 0)), 0u);
  EXPECT_EQ(select_best(chains, stpes::core::weighted_cost(0, 1, 0)), 1u);
}

TEST(Selector, FirstWinsOnTies) {
  const std::vector<boolean_chain> chains{xor_heavy_chain(),
                                          xor_heavy_chain()};
  EXPECT_EQ(select_best(chains, stpes::core::gate_count_cost()), 0u);
}

TEST(Selector, EmptyInputThrows) {
  EXPECT_THROW(select_best({}, stpes::core::gate_count_cost()),
               std::invalid_argument);
}

TEST(Selector, EndToEndCostSelection) {
  // The paper's flexibility argument: synthesize all optima of a function
  // and pick by different costs; both picks must still realize f.
  const auto f = truth_table::from_hex(4, "0xe8e8");
  const auto r =
      stpes::core::exact_synthesis(f, stpes::core::engine::stp, 60.0);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r.chains.size(), 1u);
  const auto& cheap_xor = best_chain(r.chains, stpes::core::xor_cost());
  const auto& shallow = best_chain(r.chains, stpes::core::depth_cost());
  EXPECT_EQ(cheap_xor.simulate(), f);
  EXPECT_EQ(shallow.simulate(), f);
  // Different costs can pick different implementations; both optimal in
  // size.
  EXPECT_EQ(cheap_xor.size(), r.optimum_gates);
  EXPECT_EQ(shallow.size(), r.optimum_gates);
}

}  // namespace
