/// \file cancellation_test.cpp
/// \brief Cooperative cancellation through `core::run_context`.
///
/// The contract under test: flipping the cancel flag from any thread makes
/// a running synthesis return `status::timeout` within the engines'
/// bounded poll strides — promptly, regardless of how deep the search is —
/// and the per-stage counters report the effort spent up to that point.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/exact_synthesis.hpp"
#include "tt/truth_table.hpp"
#include "util/run_context.hpp"
#include "workload/collections.hpp"

namespace {

using stpes::core::engine;
using stpes::core::run_context;
using stpes::synth::status;
using stpes::tt::truth_table;

constexpr engine kAllEngines[] = {engine::stp, engine::bms, engine::fen,
                                  engine::cegar, engine::portfolio};

TEST(Cancellation, PreCancelledContextReturnsTimeoutImmediately) {
  // The flag is checked before any search starts: a context cancelled
  // up front costs (at most) one poll stride of work.
  stpes::synth::spec s;
  s.function = truth_table::from_hex(4, "0x1ee1") ^
               truth_table::nth_var(4, 0);  // non-degenerate target
  for (const auto e : kAllEngines) {
    run_context ctx;  // unlimited deadline — only the flag stops it
    ctx.request_cancel();
    s.ctx = &ctx;
    const auto r = stpes::core::exact_synthesis(s, e);
    EXPECT_EQ(r.outcome, status::timeout) << stpes::core::to_string(e);
  }
}

TEST(Cancellation, CancelFromAnotherThreadStopsAHardSynthesis) {
  // This PDSD8 instance takes the STP engine multiple seconds (it times
  // out the 3 s Table-I budget); the worker runs it with no deadline at
  // all, so only the cancel flag can stop it.
  const auto f = stpes::workload::pdsd_functions(8, 1, 1).front();
  run_context ctx;
  stpes::synth::spec s;
  s.function = f;
  s.ctx = &ctx;

  stpes::synth::result r;
  std::atomic<bool> started{false};
  std::thread worker{[&] {
    started.store(true, std::memory_order_release);
    r = stpes::core::exact_synthesis(s, engine::stp);
  }};
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Let the search get past the degenerate-case shortcuts and deep into
  // fence/DAG/factorization territory before pulling the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto cancel_time = std::chrono::steady_clock::now();
  ctx.request_cancel();
  worker.join();
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cancel_time)
          .count();

  EXPECT_EQ(r.outcome, status::timeout);
  // The poll strides bound the reaction time: well under 100 ms even on
  // a loaded machine.
  EXPECT_LT(latency, 0.1) << "engine kept running " << latency
                          << " s after the cancel flag was set";
  // The run did real work before it was stopped, and that effort is
  // visible in the counters.
  EXPECT_GT(r.counters.total(), 0u);
  EXPECT_EQ(ctx.counters.total(), r.counters.total());
}

TEST(Cancellation, CountersAccumulateAcrossRunsAndReportDeltas) {
  run_context ctx;
  stpes::synth::spec s;
  s.function = truth_table::from_hex(4, "0x8ff8");
  s.ctx = &ctx;

  const auto r1 = stpes::core::exact_synthesis(s, engine::stp);
  ASSERT_TRUE(r1.ok());
  EXPECT_GT(r1.counters.fences_enumerated, 0u);
  EXPECT_GT(r1.counters.dags_generated, 0u);
  EXPECT_GT(r1.counters.factorization_attempts, 0u);
  EXPECT_GT(r1.counters.allsat_propagations, 0u);

  s.function = truth_table::from_hex(4, "0x6996");  // XOR4
  const auto r2 = stpes::core::exact_synthesis(s, engine::stp);
  ASSERT_TRUE(r2.ok());

  // result::counters is the per-call delta; the shared context holds the
  // running sum over both calls.
  EXPECT_EQ(ctx.counters.total(),
            r1.counters.total() + r2.counters.total());
}

TEST(Cancellation, SatEnginesReportSolverCounters) {
  for (const auto e : {engine::bms, engine::fen, engine::cegar}) {
    run_context ctx;
    stpes::synth::spec s;
    s.function = truth_table::from_hex(4, "0x8ff8");
    s.ctx = &ctx;
    const auto r = stpes::core::exact_synthesis(s, e);
    ASSERT_TRUE(r.ok()) << stpes::core::to_string(e);
    EXPECT_GT(r.counters.sat_decisions, 0u) << stpes::core::to_string(e);
  }
}

}  // namespace
