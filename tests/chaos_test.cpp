/// \file chaos_test.cpp
/// \brief Failpoint-driven chaos: the daemon under an injected fault storm.
///
/// Drives SYNTH/BATCH/SAVE/LOAD traffic over real pipe sessions while
/// failpoints inject cache-insert failures, thread-pool submission
/// failures, torn file writes, and a truncated client connection.  The
/// invariants under fire:
///
///   * every reply is well-formed (OK / ERR / BUSY head, counted payload),
///   * the session and the daemon survive every injected fault,
///   * the cache file on disk is never torn — a SAVE either lands whole
///     or not at all (verified by a final *strict* load),
///   * after the storm, with failpoints cleared, the daemon serves
///     normally.
///
/// Trigger periods are fixed (`every=N` counts evaluations), so a given
/// request sequence replays the same faults deterministically.  Each
/// iteration is kept small on purpose: CI repeats the whole suite with
/// `--gtest_repeat=100` under TSan, so per-run seconds multiply by 100.
/// All test names start with `Chaos` so the CI filter can target them.

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.hpp"
#include "server/fd_stream.hpp"
#include "server/server.hpp"
#include "server/socket_server.hpp"
#include "service/chain_io.hpp"
#include "util/failpoint.hpp"

namespace {

using stpes::core::engine;
using stpes::server::line_client;
using stpes::server::server_options;
using stpes::server::synthesis_server;
using stpes::tt::truth_table;
using stpes::util::failpoint_registry;
using stpes::util::failpoints_compiled_in;

/// A live session over two POSIX pipes (the daemon's `--pipe` transport);
/// deliberately a local copy of the server_test helper so the chaos binary
/// stays self-contained for `--gtest_repeat` runs.
class pipe_session {
public:
  explicit pipe_session(synthesis_server& server) {
    EXPECT_EQ(::pipe(to_server_), 0);
    EXPECT_EQ(::pipe(from_server_), 0);
    server_in_ = std::make_unique<stpes::server::fd_iostream>(to_server_[0]);
    server_out_ =
        std::make_unique<stpes::server::fd_iostream>(from_server_[1]);
    client_in_ =
        std::make_unique<stpes::server::fd_iostream>(from_server_[0]);
    client_out_ =
        std::make_unique<stpes::server::fd_iostream>(to_server_[1]);
    thread_ = std::thread([&server, this] {
      server.serve(*server_in_, *server_out_);
      server_out_->flush();
      ::close(from_server_[1]);
      server_write_closed_ = true;
    });
    client_ = std::make_unique<line_client>(*client_in_, *client_out_);
  }

  ~pipe_session() {
    finish();
    ::close(to_server_[0]);
    if (!client_read_closed_) {
      ::close(from_server_[0]);
    }
    if (!server_write_closed_) {
      ::close(from_server_[1]);
    }
  }

  [[nodiscard]] line_client& client() { return *client_; }

  /// Raw client-side write stream, for half-written requests that bypass
  /// `line_client`'s request/reply discipline.
  [[nodiscard]] std::ostream& raw_out() { return *client_out_; }

  /// Closes the client's write end (EOF for the server) and joins.
  void finish() {
    if (thread_.joinable()) {
      client_out_->flush();
      ::close(to_server_[1]);
      thread_.join();
    }
  }

  /// Abandons the connection abruptly: both client fds close with a
  /// request possibly half-written — the truncated-client fault.
  void abandon() {
    if (thread_.joinable()) {
      client_out_->flush();
      ::close(to_server_[1]);
      ::close(from_server_[0]);
      client_read_closed_ = true;
      thread_.join();
    }
  }

private:
  int to_server_[2] = {-1, -1};
  int from_server_[2] = {-1, -1};
  std::unique_ptr<stpes::server::fd_iostream> server_in_;
  std::unique_ptr<stpes::server::fd_iostream> server_out_;
  std::unique_ptr<stpes::server::fd_iostream> client_in_;
  std::unique_ptr<stpes::server::fd_iostream> client_out_;
  std::unique_ptr<line_client> client_;
  std::thread thread_;
  bool server_write_closed_ = false;  ///< written before join, read after
  bool client_read_closed_ = false;
};

class temp_file {
public:
  explicit temp_file(const std::string& name)
      : path_(::testing::TempDir() + name) {}
  ~temp_file() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

private:
  std::string path_;
};

/// Small 2–4-variable functions: enough NPN classes to churn the cache,
/// cheap enough that one iteration stays in test-suite time.
std::vector<truth_table> chaos_functions() {
  std::vector<truth_table> fns;
  for (const char* hex : {"8", "6", "9", "e", "1"}) {
    fns.push_back(truth_table::from_hex(2, hex));
  }
  for (const char* hex : {"80", "96", "e8", "17", "69"}) {
    fns.push_back(truth_table::from_hex(3, hex));
  }
  for (const char* hex : {"8000", "6996", "8778"}) {
    fns.push_back(truth_table::from_hex(4, hex));
  }
  return fns;
}

class Chaos : public ::testing::Test {
protected:
  void SetUp() override {
    if (!failpoints_compiled_in()) {
      GTEST_SKIP() << "failpoints compiled out (STPES_FAILPOINTS=OFF)";
    }
    // The daemon ignores SIGPIPE (stpes_serve_main); the server runs
    // in-process here, so the test harness must do the same or a reply to
    // an abandoned client kills the whole binary.
    std::signal(SIGPIPE, SIG_IGN);
    failpoint_registry::instance().clear_all();
  }
  void TearDown() override {
    if (failpoints_compiled_in()) {
      failpoint_registry::instance().clear_all();
    }
  }
};

TEST_F(Chaos, ChaosFaultStormNeverKillsTheDaemonOrTearsTheCache) {
  server_options opts;
  opts.default_timeout_seconds = 5.0;
  opts.num_threads = 2;
  synthesis_server server{opts};
  temp_file cache_file{"chaos_cache.txt"};

  // The storm: periodic faults at every instrumented seam.  Periods are
  // mutually prime-ish so the combinations vary across the run.
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("shard_cache.insert", "every=3"));
  ASSERT_TRUE(reg.set("thread_pool.submit", "every=5"));
  ASSERT_TRUE(reg.set("chain_io.save.write", "every=2,errno=ENOSPC"));
  ASSERT_TRUE(reg.set("chain_io.save.rename", "once"));

  const auto fns = chaos_functions();
  pipe_session session{server};
  std::size_t ok_replies = 0;
  std::size_t err_replies = 0;

  for (std::size_t round = 0; round < 3; ++round) {
    // SYNTH each function; a submit-failpoint round-trips as a failure
    // result (ERR), never as a hung or half-written reply.
    for (const auto& f : fns) {
      const auto r = session.client().synth(engine::stp, f);
      EXPECT_FALSE(r.busy);
      if (r.ok) {
        EXPECT_NE(r.request_id, 0u);
        ++ok_replies;
      } else {
        EXPECT_FALSE(r.error.empty());
        ++err_replies;
      }
    }
    // One BATCH over everything: counted reply, one result per request.
    std::vector<std::pair<engine, truth_table>> batch;
    batch.reserve(fns.size());
    for (const auto& f : fns) {
      batch.emplace_back(engine::stp, f);
    }
    const auto replies = session.client().batch(batch);
    ASSERT_EQ(replies.size(), batch.size());

    // SAVE under write/rename faults: may fail (ERR), must never tear.
    try {
      session.client().save(cache_file.path());
    } catch (const std::runtime_error&) {
      // Injected ENOSPC / rename failure — the ERR path.
    }
    // LOAD whatever landed: lenient about damaged entries by design, and
    // with atomic saves there are none.
    try {
      session.client().load(cache_file.path());
    } catch (const std::runtime_error&) {
    }
    // The daemon still answers between rounds.
    ASSERT_TRUE(session.client().ping());
  }
  EXPECT_GT(ok_replies, 0u);

  // Clients that vanish mid-request: one dies inside a BATCH body (no
  // END ever arrives), one dies mid-line (no terminating newline).  The
  // daemon must shrug both off.
  {
    pipe_session truncated{server};
    truncated.raw_out() << "BATCH\nstp 2 0x8\n";
    truncated.abandon();

    pipe_session half{server};
    half.raw_out() << "SYNTH stp 2";  // severed before the newline
    half.abandon();
  }

  // Storm over: clear every failpoint, the daemon serves normally and the
  // file on disk (if any SAVE landed) passes the *strict* loader — a torn
  // write would throw here.
  reg.clear_all();
  ASSERT_TRUE(session.client().ping());
  const auto r = session.client().synth(engine::stp, fns.front());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_NO_THROW({
    const auto entries =
        stpes::service::load_cache_file(cache_file.path());
    (void)entries;
  });

  session.client().quit();
  session.finish();
}

TEST_F(Chaos, ChaosSocketReadFaultEndsOnlyThatSession) {
  server_options opts;
  opts.default_timeout_seconds = 5.0;
  opts.num_threads = 2;
  synthesis_server server{opts};

  // Every 4th fd read dies with ECONNRESET: sessions drop like real
  // clients vanishing.  The server object must stay serviceable for new
  // sessions throughout.
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("fd_stream.read", "every=4,errno=ECONNRESET"));

  const auto and2 = truth_table::from_hex(2, "8");
  std::size_t served = 0;
  for (int i = 0; i < 6; ++i) {
    pipe_session s{server};
    try {
      const auto r = s.client().synth(engine::stp, and2);
      if (r.ok) {
        ++served;
      }
    } catch (const std::runtime_error&) {
      // The injected read fault surfaced as EOF mid-session.
    }
    s.finish();
  }
  reg.clear_all();

  // With the fault gone, a fresh session works.
  pipe_session s{server};
  const auto r = s.client().synth(engine::stp, and2);
  EXPECT_TRUE(r.ok) << r.error;
  s.client().quit();
  s.finish();
}

TEST_F(Chaos, ChaosWriteFaultDropsTheSessionNotTheDaemon) {
  server_options opts;
  opts.default_timeout_seconds = 5.0;
  opts.num_threads = 2;
  synthesis_server server{opts};

  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("fd_stream.write", "every=3,errno=EPIPE"));

  const auto and2 = truth_table::from_hex(2, "8");
  for (int i = 0; i < 4; ++i) {
    pipe_session s{server};
    try {
      (void)s.client().synth(engine::stp, and2);
      (void)s.client().synth(engine::stp, and2);
    } catch (const std::runtime_error&) {
      // Broken-pipe injection: the reply never arrived.
    }
    s.finish();
  }
  reg.clear_all();

  pipe_session s{server};
  EXPECT_TRUE(s.client().ping());
  s.client().quit();
  s.finish();
}

TEST_F(Chaos, ChaosAcceptFaultsDelayButNeverDropConnections) {
  server_options opts;
  opts.default_timeout_seconds = 5.0;
  opts.num_threads = 2;
  synthesis_server server{opts};
  const std::string socket_path =
      "/tmp/stpes_chaos_accept_" + std::to_string(::getpid()) + ".sock";
  stpes::server::unix_socket_server transport{server, socket_path};
  std::thread accept_thread{[&] { transport.run(); }};

  // `every=2` fires on every second accept attempt; the un-accepted
  // connection stays in the listen backlog and the next poll round picks
  // it up, so clients only see added latency.  (`always` would starve the
  // backlog and busy-poll — the seam models transient ECONNABORTED/EMFILE
  // faults, not a dead listener.)
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("socket_server.accept", "every=2,errno=ECONNABORTED"));

  const auto and2 = truth_table::from_hex(2, "8");
  for (int i = 0; i < 4; ++i) {
    stpes::server::unix_client client{socket_path};
    const auto r = client.session().synth(engine::stp, and2);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(client.session().ping());
    client.session().quit();
  }
  EXPECT_GE(reg.hits("socket_server.accept"), 1u);
  reg.clear_all();

  // With the fault cleared the listener serves normally.
  {
    stpes::server::unix_client client{socket_path};
    EXPECT_TRUE(client.session().ping());
    client.session().quit();
  }
  transport.stop();
  accept_thread.join();
}

TEST_F(Chaos, ChaosOverloadStormShedsInsteadOfQueueing) {
  server_options opts;
  opts.default_timeout_seconds = 5.0;
  opts.num_threads = 1;
  opts.max_pending_jobs = 2;
  synthesis_server server{opts};

  // Submission faults + a tiny admission bound: every reply must still be
  // one of OK, ERR, or BUSY — never a hang, never a malformed head.
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("thread_pool.submit", "every=4"));

  const auto fns = chaos_functions();
  pipe_session s{server};
  std::size_t busy = 0;
  for (const auto& f : fns) {
    const auto r = s.client().synth(engine::stp, f);
    if (r.busy) {
      ++busy;
      EXPECT_GT(r.retry_after_ms, 0u);
    }
  }
  // Shedding is load-dependent; what is guaranteed is well-formed replies
  // (checked above) and a live daemon.
  (void)busy;
  reg.clear_all();
  EXPECT_TRUE(s.client().ping());
  s.client().quit();
  s.finish();
}

}  // namespace
