#include "tt/isf.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using stpes::tt::isf;
using stpes::tt::truth_table;

truth_table random_tt(unsigned n, stpes::util::rng& rng) {
  truth_table f{n};
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    f.set_bit(t, rng.next_bool());
  }
  return f;
}

TEST(Isf, FromFunctionIsFullySpecified) {
  const auto f = truth_table::from_hex(3, "0xe8");
  const auto spec = isf::from_function(f);
  EXPECT_TRUE(spec.is_fully_specified());
  EXPECT_TRUE(spec.accepts(f));
  EXPECT_FALSE(spec.accepts(~f));
  EXPECT_EQ(spec.onset(), f);
}

TEST(Isf, UnconstrainedAcceptsEverything) {
  const isf any{4};
  EXPECT_TRUE(any.is_unconstrained());
  stpes::util::rng rng{3};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(any.accepts(random_tt(4, rng)));
  }
}

TEST(Isf, OnsetIsMaskedByCareset) {
  const auto on = truth_table::constant(3, true);
  truth_table care{3};
  care.set_bit(1, true);
  care.set_bit(5, true);
  const isf partial{on, care};
  EXPECT_EQ(partial.onset().count_ones(), 2u);
  EXPECT_EQ(partial.care_count(), 2u);
}

TEST(Isf, ComplementSwapsOnAndOff) {
  stpes::util::rng rng{17};
  const auto on = random_tt(4, rng);
  const auto care = random_tt(4, rng) | on;
  const isf spec{on, care};
  const isf comp = spec.complement();
  EXPECT_EQ(comp.careset(), spec.careset());
  EXPECT_EQ(comp.onset(), spec.offset());
  EXPECT_EQ(comp.offset(), spec.onset());
  // A completion of spec, complemented, is accepted by comp.
  EXPECT_TRUE(comp.accepts(~spec.onset()));
}

TEST(Isf, IntersectCompatible) {
  // Requirement 1: minterm 0 -> 1.  Requirement 2: minterm 3 -> 0.
  truth_table care1{2};
  care1.set_bit(0, true);
  truth_table on1{2};
  on1.set_bit(0, true);
  truth_table care2{2};
  care2.set_bit(3, true);
  const isf r1{on1, care1};
  const isf r2{truth_table{2}, care2};
  const auto merged = r1.intersect(r2);
  ASSERT_TRUE(merged.has_value());
  EXPECT_TRUE(merged->onset().get_bit(0));
  EXPECT_TRUE(merged->careset().get_bit(3));
  EXPECT_FALSE(merged->onset().get_bit(3));
  EXPECT_EQ(merged->care_count(), 2u);
}

TEST(Isf, IntersectConflictDetected) {
  truth_table care{2};
  care.set_bit(2, true);
  truth_table on{2};
  on.set_bit(2, true);
  const isf forced_one{on, care};
  const isf forced_zero{truth_table{2}, care};
  EXPECT_FALSE(forced_one.intersect(forced_zero).has_value());
  // Self-intersection is always fine.
  EXPECT_TRUE(forced_one.intersect(forced_one).has_value());
}

TEST(Isf, ProjectToConeOfCompleteFunctionInCone) {
  // f = x0 & x1 over 3 vars depends only on {x0, x1}: projection to that
  // cone must succeed and stay equivalent.
  const auto f = truth_table::nth_var(3, 0) & truth_table::nth_var(3, 1);
  const auto spec = isf::from_function(f);
  const auto projected = spec.project_to_cone(0b011);
  ASSERT_TRUE(projected.has_value());
  EXPECT_TRUE(projected->accepts(f));
  EXPECT_TRUE(projected->is_fully_specified());
}

TEST(Isf, ProjectToConeFailsWhenFunctionUsesOtherVars) {
  const auto f = truth_table::nth_var(3, 2);
  const auto spec = isf::from_function(f);
  EXPECT_FALSE(spec.project_to_cone(0b011).has_value());
}

TEST(Isf, ProjectMergesDontCareClasses) {
  // Care only on minterms 0 (value 1) and 1 (value 1): projecting to cone
  // {x0} forces class x0=0 -> 1 and class x0=1 -> 1.
  truth_table on{2};
  on.set_bit(0, true);
  on.set_bit(1, true);
  truth_table care = on;
  const isf spec{on, care};
  const auto projected = spec.project_to_cone(0b01);
  ASSERT_TRUE(projected.has_value());
  EXPECT_TRUE(projected->is_fully_specified());
  EXPECT_TRUE(projected->accepts(truth_table::constant(2, true)));
}

TEST(Isf, CompletionInConeRespectsRequirement) {
  stpes::util::rng rng{99};
  for (int iteration = 0; iteration < 50; ++iteration) {
    const unsigned n = 4;
    // Random function of a 2-variable cone, random partial care set.
    const std::uint32_t cone = 0b0101;
    truth_table g{n};
    for (std::uint64_t t = 0; t < g.num_bits(); ++t) {
      g.set_bit(t, rng.next_bool());
    }
    // Make g depend only on the cone by projecting through completion.
    const auto g_cone = isf::from_function(g)
                            .project_to_cone(cone)
                            .value_or(isf{n})
                            .completion_in_cone(cone);
    const auto care = random_tt(n, rng);
    const isf spec{g_cone & care, care};
    const auto completion = spec.completion_in_cone(cone);
    EXPECT_TRUE(spec.accepts(completion));
    // The completion must depend only on cone variables.
    EXPECT_EQ(completion.support_mask() & ~cone, 0u);
  }
}

TEST(Isf, AcceptsIsInvariantUnderDontCareChanges) {
  stpes::util::rng rng{123};
  const auto f = random_tt(5, rng);
  const auto care = random_tt(5, rng);
  const isf spec{f & care, care};
  // Any function agreeing on the care set is accepted.
  const auto noise = random_tt(5, rng) & ~care;
  EXPECT_TRUE(spec.accepts((f & care) | noise));
}

}  // namespace
