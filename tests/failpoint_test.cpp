/// \file failpoint_test.cpp
/// \brief The failpoint registry and the seams it is wired into.
///
/// Trigger semantics (once / always / every=N / errno overrides), spec
/// rejection, environment loading, and one test per instrumented seam
/// proving the component recovers after the injected fault: thread-pool
/// submission, cache insertion, and the atomic save path (a failed rename
/// must leave the previous file intact and no scratch file behind).
/// Everything here is skipped in builds that compile the hooks out.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "chain/boolean_chain.hpp"
#include "service/chain_io.hpp"
#include "service/shard_cache.hpp"
#include "service/thread_pool.hpp"
#include "util/failpoint.hpp"

namespace {

using stpes::service::cache_entry;
using stpes::service::load_cache_file;
using stpes::service::save_cache_file;
using stpes::util::failpoint_error;
using stpes::util::failpoint_registry;
using stpes::util::failpoints_compiled_in;

/// Clears the process-global registry around every test in this file.
class Failpoint : public ::testing::Test {
protected:
  void SetUp() override {
    if (!failpoints_compiled_in()) {
      GTEST_SKIP() << "failpoints compiled out (STPES_FAILPOINTS=OFF)";
    }
    failpoint_registry::instance().clear_all();
  }
  void TearDown() override { failpoint_registry::instance().clear_all(); }
};

cache_entry and2_entry() {
  stpes::chain::boolean_chain c{2};
  c.set_output(c.add_step(0x8, 0, 1));
  cache_entry e;
  e.function = c.simulate();
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 1;
  e.result.chains = {c};
  return e;
}

TEST_F(Failpoint, OnceFiresExactlyOnce) {
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("t.once", "once"));
  EXPECT_EQ(reg.should_fail("t.once"), 5);  // EIO default
  EXPECT_EQ(reg.should_fail("t.once"), 0);
  EXPECT_EQ(reg.should_fail("t.once"), 0);
  EXPECT_EQ(reg.hits("t.once"), 1u);
}

TEST_F(Failpoint, EveryNFiresOnEveryNthEvaluation) {
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("t.every", "every=3"));
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (reg.should_fail("t.every") != 0) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(reg.hits("t.every"), 3u);
}

TEST_F(Failpoint, AlwaysFiresUntilCleared) {
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("t.always", "always,errno=EPIPE"));
  EXPECT_EQ(reg.should_fail("t.always"), 32);
  EXPECT_EQ(reg.should_fail("t.always"), 32);
  reg.clear("t.always");
  EXPECT_EQ(reg.should_fail("t.always"), 0);
}

TEST_F(Failpoint, ErrnoOverridesSymbolicAndNumeric) {
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("t.sym", "always,errno=ENOSPC"));
  EXPECT_EQ(reg.should_fail("t.sym"), 28);
  ASSERT_TRUE(reg.set("t.num", "always,errno=13"));
  EXPECT_EQ(reg.should_fail("t.num"), 13);
}

TEST_F(Failpoint, MalformedSpecsAreRejectedWithoutArming) {
  auto& reg = failpoint_registry::instance();
  EXPECT_FALSE(reg.set("t.bad", ""));
  EXPECT_FALSE(reg.set("t.bad", "sometimes"));
  EXPECT_FALSE(reg.set("t.bad", "every=0"));
  EXPECT_FALSE(reg.set("t.bad", "every=x"));
  EXPECT_FALSE(reg.set("t.bad", "once,always"));      // two triggers
  EXPECT_FALSE(reg.set("t.bad", "errno=5"));          // no trigger
  EXPECT_FALSE(reg.set("t.bad", "once,errno=EBOGUS"));
  EXPECT_FALSE(reg.set("", "once"));
  EXPECT_EQ(reg.should_fail("t.bad"), 0);
  EXPECT_TRUE(reg.list().empty());
}

TEST_F(Failpoint, OffSpecDisarmsAnArmedPoint) {
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("t.off", "always"));
  ASSERT_TRUE(reg.set("t.off", "off"));
  EXPECT_EQ(reg.should_fail("t.off"), 0);
  EXPECT_TRUE(reg.list().empty());
}

TEST_F(Failpoint, LoadsMultiplePointsFromTheEnvironment) {
  ::setenv("STPES_FAILPOINTS_TEST",
           "a.b=once;bad-item;c.d=every=2,errno=EAGAIN;=once", 1);
  auto& reg = failpoint_registry::instance();
  EXPECT_EQ(reg.load_from_env("STPES_FAILPOINTS_TEST"), 2u);
  EXPECT_EQ(reg.should_fail("a.b"), 5);
  EXPECT_EQ(reg.should_fail("c.d"), 0);
  EXPECT_EQ(reg.should_fail("c.d"), 11);
  ::unsetenv("STPES_FAILPOINTS_TEST");
}

TEST_F(Failpoint, ListRendersSortedSpecsWithHitCounts) {
  auto& reg = failpoint_registry::instance();
  ASSERT_TRUE(reg.set("z.point", "always"));
  ASSERT_TRUE(reg.set("a.point", "every=4,errno=EPIPE"));
  reg.should_fail("z.point");
  const auto points = reg.list();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].first, "a.point");
  EXPECT_EQ(points[0].second, "every=4,errno=32 hits=0");
  EXPECT_EQ(points[1].first, "z.point");
  EXPECT_EQ(points[1].second, "always,errno=5 hits=1");
}

TEST_F(Failpoint, ThreadPoolRecoversAfterInjectedSubmitFailure) {
  stpes::service::thread_pool pool{2};
  failpoint_registry::instance().set("thread_pool.submit", "once");
  EXPECT_THROW(pool.submit([] {}), failpoint_error);
  // The pool is not poisoned: the next submission runs normally.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST_F(Failpoint, ShardCacheInsertFaultLeavesTheCacheConsistent) {
  stpes::service::shard_cache cache;
  const auto e = and2_entry();
  failpoint_registry::instance().set("shard_cache.insert", "once");
  EXPECT_THROW(cache.insert(e.function, e.result), failpoint_error);
  EXPECT_EQ(cache.size(), 0u);
  // Retry succeeds and the entry is served.
  EXPECT_TRUE(cache.insert(e.function, e.result));
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(Failpoint, FailedRenameLeavesThePreviousFileIntact) {
  const std::string path = ::testing::TempDir() + "failpoint_rename.txt";
  const auto e = and2_entry();
  save_cache_file(path, {e});

  failpoint_registry::instance().set("chain_io.save.rename", "once");
  EXPECT_THROW(save_cache_file(path, {e, e}), failpoint_error);

  // The target still holds the first save, whole and loadable, and the
  // aborted save's scratch file was removed.
  EXPECT_EQ(load_cache_file(path).size(), 1u);
  std::remove(path.c_str());
}

TEST_F(Failpoint, FailedWriteNeverTouchesTheTarget) {
  const std::string path = ::testing::TempDir() + "failpoint_write.txt";
  const auto e = and2_entry();
  failpoint_registry::instance().set("chain_io.save.write", "once");
  EXPECT_THROW(save_cache_file(path, {e}), failpoint_error);
  std::ifstream is{path};
  EXPECT_FALSE(is.good());  // target was never created
}

TEST_F(Failpoint, InjectedFsyncFailureFailsTheSave) {
  const std::string path = ::testing::TempDir() + "failpoint_fsync.txt";
  const auto e = and2_entry();
  failpoint_registry::instance().set("chain_io.save.fsync",
                                     "once,errno=ENOSPC");
  try {
    save_cache_file(path, {e});
    FAIL() << "fsync failure must fail the save";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string{ex.what()}.find("fsync"), std::string::npos)
        << ex.what();
  }
  std::ifstream is{path};
  EXPECT_FALSE(is.good());
}

}  // namespace
