/// \file sweep_server_test.cpp
/// \brief The daemon's SWEEP verb: argument validation, the OK/ERR reply
///        grammar, admission control (quota, shedding, size limit), live
///        progress in STATS, and the acceptance-criterion latency bound —
///        an in-flight SWEEP must answer a `CANCEL <id>` from another
///        connection in well under 100 ms.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aiger_io.hpp"
#include "server/client.hpp"
#include "server/fd_stream.hpp"
#include "server/server.hpp"

#ifndef STPES_AIG_DATA_DIR
#define STPES_AIG_DATA_DIR "tests/data/aig"
#endif

namespace {

using stpes::server::line_client;
using stpes::server::server_options;
using stpes::server::synthesis_server;

const std::string kXorBenchmark =
    std::string{STPES_AIG_DATA_DIR} + "/xor_two_ways.aag";

std::string run_session(synthesis_server& server, const std::string& input) {
  std::istringstream in{input};
  std::ostringstream out;
  server.serve(in, out);
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  return lines;
}

server_options quick_options() {
  server_options opts;
  opts.default_timeout_seconds = 60.0;
  opts.num_threads = 2;
  return opts;
}

/// Same in-process pipe transport as server_test.cpp: the server thread
/// serves one session, the test drives a line_client.
class pipe_session {
public:
  explicit pipe_session(synthesis_server& server) {
    EXPECT_EQ(::pipe(to_server_), 0);
    EXPECT_EQ(::pipe(from_server_), 0);
    server_in_ = std::make_unique<stpes::server::fd_iostream>(to_server_[0]);
    server_out_ =
        std::make_unique<stpes::server::fd_iostream>(from_server_[1]);
    client_in_ =
        std::make_unique<stpes::server::fd_iostream>(from_server_[0]);
    client_out_ =
        std::make_unique<stpes::server::fd_iostream>(to_server_[1]);
    thread_ = std::thread([&server, this] {
      server.serve(*server_in_, *server_out_);
      server_out_->flush();
      ::close(from_server_[1]);
      server_write_closed_ = true;
    });
    client_ = std::make_unique<line_client>(*client_in_, *client_out_);
  }

  ~pipe_session() {
    finish();
    ::close(to_server_[0]);
    ::close(from_server_[0]);
    if (!server_write_closed_) {
      ::close(from_server_[1]);
    }
  }

  [[nodiscard]] line_client& client() { return *client_; }

  void finish() {
    if (thread_.joinable()) {
      client_out_->flush();
      ::close(to_server_[1]);
      thread_.join();
    }
  }

private:
  int to_server_[2] = {-1, -1};
  int from_server_[2] = {-1, -1};
  std::unique_ptr<stpes::server::fd_iostream> server_in_;
  std::unique_ptr<stpes::server::fd_iostream> server_out_;
  std::unique_ptr<stpes::server::fd_iostream> client_in_;
  std::unique_ptr<stpes::server::fd_iostream> client_out_;
  std::unique_ptr<line_client> client_;
  std::thread thread_;
  bool server_write_closed_ = false;
};

/// A scratch AIGER file removed on scope exit.
class temp_aiger {
public:
  temp_aiger(const std::string& name, const stpes::aig::aig_network& net)
      : path_(::testing::TempDir() + name) {
    stpes::aig::write_aiger_file(path_, net);
  }
  ~temp_aiger() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

private:
  std::string path_;
};

/// N-input parity built as two linear XOR chains over *different variable
/// orders* (natural vs a stride-13 permutation).  The two roots are
/// equivalent, but the miter's constraint graph — the union of the two
/// chains — is expander-like, the classic Tseitin family on which
/// resolution (hence CDCL) is exponential.  Measured: a tree-vs-chain
/// miter of the same arity solves in milliseconds, while this one takes
/// ~10 s at n=32 and minutes at n=40, so a sweep over it reliably out-
/// lives any cancellation window the tests need.
stpes::aig::aig_network hard_parity_network(unsigned n) {
  stpes::aig::aig_network net{n};
  stpes::aig::literal natural = net.input_lit(0);
  for (unsigned i = 1; i < n; ++i) {
    natural = net.create_xor(natural, net.input_lit(i));
  }
  // gcd(13, n) must be 1 so the stride walk is a permutation.
  stpes::aig::literal permuted = net.input_lit(0);
  for (unsigned i = 1; i < n; ++i) {
    permuted = net.create_xor(permuted, net.input_lit((13ull * i) % n));
  }
  net.add_output(natural);
  net.add_output(permuted);
  return net;
}

TEST(SweepServer, MalformedSweepLinesAreRejected) {
  synthesis_server server{quick_options()};
  const auto out = run_session(server,
                               "SWEEP\n"
                               "SWEEP a b c d\n"
                               "SWEEP /nonexistent/x.aag notanumber\n"
                               "SWEEP /nonexistent/x.aag -1\n"
                               "SWEEP /nonexistent/x.aag 5 dpll\n"
                               "PING\n");
  const auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), 6u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(lines[i].rfind("ERR ", 0), 0u) << lines[i];
  }
  EXPECT_EQ(lines.back(), "OK pong");
  // None of the rejects touched the job layer.
  EXPECT_EQ(server.counters().sweeps, 0u);
}

TEST(SweepServer, MissingFileIsAnErrNotACrash) {
  synthesis_server server{quick_options()};
  const auto out =
      run_session(server, "SWEEP /nonexistent/no-such.aag\nPING\n");
  const auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ERR aiger: cannot open", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1], "OK pong");
}

TEST(SweepServer, LatchedInputIsRejectedWithTheParserMessage) {
  temp_aiger latched_file{"sweep_server_latched.aag",
                          stpes::aig::aig_network{1}};
  {
    // Overwrite with a hand-written sequential file (the writer cannot
    // produce one).
    std::ofstream os{latched_file.path()};
    os << "aag 2 1 1 1 0\n2\n4 2\n4\n";
  }
  synthesis_server server{quick_options()};
  const auto out = run_session(server, "SWEEP " + latched_file.path() + "\n");
  EXPECT_EQ(out.rfind("ERR aiger: 1 latch(es)", 0), 0u) << out;
}

TEST(SweepServer, SweepsAVendoredBenchmarkWithBothProvers) {
  synthesis_server server{quick_options()};
  pipe_session s{server};
  for (const std::string prover : {"cdcl", "allsat"}) {
    const auto r = s.client().sweep(kXorBenchmark, 30.0, prover);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.ands_before, 6u);
    EXPECT_EQ(r.ands_after, 3u);
    EXPECT_GE(r.merged, 1u);
    EXPECT_EQ(r.proofs, r.merged);
    EXPECT_GE(r.sim_rounds, 1u);
    EXPECT_NE(r.request_id, 0u);
  }
  EXPECT_EQ(server.counters().sweeps, 2u);
  // The run's counters flowed into the service metrics and STATS.
  const auto json = s.client().stats_json();
  EXPECT_NE(json.find("\"sweep_merged_nodes\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sweeps\":{\"admitted\":2"), std::string::npos)
      << json;
  s.client().quit();
}

TEST(SweepServer, OversizedNetworksAreRejectedByTheAndLimit) {
  auto opts = quick_options();
  opts.limits.max_aig_ands = 3;
  synthesis_server server{opts};
  const auto out = run_session(server, "SWEEP " + kXorBenchmark + "\nPING\n");
  const auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ERR aig too large", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1], "OK pong");
}

TEST(SweepServer, SweepRequestsAreMeteredByTheSessionQuota) {
  auto opts = quick_options();
  opts.max_session_requests = 1;
  synthesis_server server{opts};
  const auto out = run_session(
      server, "SWEEP " + kXorBenchmark + "\nSWEEP " + kXorBenchmark + "\n");
  const auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("OK swept ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("ERR quota-exceeded", 0), 0u) << lines[1];
  EXPECT_EQ(server.counters().quota_rejections, 1u);
}

TEST(SweepServer, DeadlineExpiryYieldsErrTimeout) {
  synthesis_server server{quick_options()};
  pipe_session s{server};
  // A nanosecond budget on a real file: the sweep starts, observes the
  // deadline at its first poll, and comes back incomplete.
  const auto r = s.client().sweep(kXorBenchmark, 1e-9);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "timeout");
  EXPECT_GE(server.counters().timeouts, 1u);
  s.client().quit();
}

TEST(SweepServer, CancelByIdStopsTheSweepWithinTheLatencyBound) {
  auto opts = quick_options();
  opts.max_timeout_seconds = 600.0;
  synthesis_server server{opts};
  // 24-input parity two ways: the root equivalence is true but its CDCL
  // miter proof is far beyond any test budget, so without the CANCEL this
  // SWEEP would spin for (much) longer than the whole suite.
  temp_aiger hard{"sweep_server_hard_parity.aag", hard_parity_network(40)};

  pipe_session worker{server};
  pipe_session controller{server};

  line_client::sweep_reply reply;
  std::atomic<std::chrono::steady_clock::time_point> reply_at{};
  std::thread runner{[&] {
    reply = worker.client().sweep(hard.path(), 300.0, "cdcl");
    reply_at.store(std::chrono::steady_clock::now(),
                   std::memory_order_release);
  }};

  // Wait until the job is registered, then give the prover a moment to be
  // genuinely inside the hard solve before cancelling.
  std::vector<std::uint64_t> ids;
  while ((ids = server.synthesizer().active_request_ids()).empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto cancel_at = std::chrono::steady_clock::now();
  EXPECT_EQ(controller.client().cancel(ids.front()), 1u);
  runner.join();

  const auto latency = std::chrono::duration_cast<std::chrono::milliseconds>(
      reply_at.load(std::memory_order_acquire) - cancel_at);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, "timeout");
  // The acceptance bound: the CDCL loop polls the shared cancel flag every
  // 256 conflicts, so the reply must land well inside 100 ms even under
  // TSan.
  EXPECT_LT(latency.count(), 100) << "cancel latency " << latency.count()
                                  << " ms";
  EXPECT_GE(server.counters().cancels, 1u);

  // The daemon is fully healthy afterwards: the same session sweeps a
  // small benchmark to completion.
  const auto after = worker.client().sweep(kXorBenchmark, 30.0);
  EXPECT_TRUE(after.ok) << after.error;

  worker.client().quit();
  controller.client().quit();
  worker.finish();
  controller.finish();
}

TEST(SweepServer, ConnectionWideCancelAlsoStopsSweeps) {
  auto opts = quick_options();
  opts.max_timeout_seconds = 600.0;
  synthesis_server server{opts};
  temp_aiger hard{"sweep_server_hard_parity2.aag", hard_parity_network(40)};

  pipe_session worker{server};
  pipe_session controller{server};
  line_client::sweep_reply reply;
  std::atomic<bool> done{false};
  std::thread runner{[&] {
    reply = worker.client().sweep(hard.path(), 300.0, "cdcl");
    done.store(true, std::memory_order_release);
  }};
  while (!done.load(std::memory_order_acquire)) {
    controller.client().cancel();  // broadcast form, no id
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  runner.join();
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, "timeout");

  worker.client().quit();
  controller.client().quit();
  worker.finish();
  controller.finish();
}

TEST(SweepServer, ActiveSweepProgressIsVisibleInStats) {
  auto opts = quick_options();
  opts.max_timeout_seconds = 600.0;
  synthesis_server server{opts};
  temp_aiger hard{"sweep_server_hard_parity3.aag", hard_parity_network(40)};

  pipe_session worker{server};
  pipe_session observer{server};
  line_client::sweep_reply reply;
  std::thread runner{[&] {
    reply = worker.client().sweep(hard.path(), 300.0, "cdcl");
  }};
  std::vector<std::uint64_t> ids;
  while ((ids = server.synthesizer().active_request_ids()).empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // While the sweep is in flight, STATS JSON lists it under "sweeps" with
  // its request id and live counters.
  const auto json = observer.client().stats_json();
  EXPECT_NE(json.find("\"sweeps\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":" + std::to_string(ids.front())),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sim_rounds\":"), std::string::npos) << json;
  const auto text = observer.client().stats_text();
  bool saw_active = false;
  for (const auto& line : text) {
    if (line.rfind("sweeps_active", 0) == 0) {
      saw_active = line.find('1') != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_active);

  observer.client().cancel(ids.front());
  runner.join();
  EXPECT_FALSE(reply.ok);

  // Once the job is gone, the active list is empty again.
  const auto after = observer.client().stats_json();
  EXPECT_NE(after.find("\"active\":[]"), std::string::npos) << after;

  worker.client().quit();
  observer.client().quit();
  worker.finish();
  observer.finish();
}

}  // namespace
