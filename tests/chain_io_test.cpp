/// \file chain_io_test.cpp
/// \brief Round-trip and rejection tests for the chain/result text format.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/exact_synthesis.hpp"
#include "service/chain_io.hpp"

namespace {

using stpes::chain::boolean_chain;
using stpes::service::cache_entry;
using stpes::service::load_cache;
using stpes::service::load_cache_file;
using stpes::service::load_cache_file_lenient;
using stpes::service::load_cache_lenient;
using stpes::service::parse_chain;
using stpes::service::save_cache;
using stpes::service::save_cache_file;
using stpes::service::serialize_chain;
using stpes::tt::truth_table;

boolean_chain example_chain() {
  // x4 = x0 & x1; x5 = x2 ^ x3; f = !(x4 | x5)
  boolean_chain c{4};
  const auto a = c.add_step(0x8, 0, 1);
  const auto b = c.add_step(0x6, 2, 3);
  c.set_output(c.add_step(0xE, a, b), true);
  return c;
}

TEST(ChainIo, ChainRoundTripPreservesEverything) {
  const auto original = example_chain();
  const auto line = serialize_chain(original);
  const auto parsed = parse_chain(line);
  EXPECT_TRUE(parsed == original);
  EXPECT_EQ(parsed.simulate(), original.simulate());
  EXPECT_TRUE(parsed.output_complemented());
}

TEST(ChainIo, StepFreeChainRoundTrips) {
  boolean_chain c{3};
  c.set_output(1);  // f = x1
  const auto parsed = parse_chain(serialize_chain(c));
  EXPECT_TRUE(parsed == c);
  EXPECT_EQ(parsed.simulate(), truth_table::nth_var(3, 1));
}

TEST(ChainIo, MalformedChainLinesAreRejected) {
  // Wrong keyword.
  EXPECT_THROW(parse_chain("chian 2 1 2 0 8 0 1"), std::runtime_error);
  // Too few header fields.
  EXPECT_THROW(parse_chain("chain 2 1"), std::runtime_error);
  // Non-numeric field.
  EXPECT_THROW(parse_chain("chain 2 one 2 0 8 0 1"), std::runtime_error);
  // Step token count does not match num_steps.
  EXPECT_THROW(parse_chain("chain 2 2 2 0 8 0 1"), std::runtime_error);
  // Operator out of 4-bit range.
  EXPECT_THROW(parse_chain("chain 2 1 2 0 16 0 1"), std::runtime_error);
  // Fanin referencing a later signal.
  EXPECT_THROW(parse_chain("chain 2 1 2 0 8 0 2"), std::runtime_error);
  // Output signal that does not exist.
  EXPECT_THROW(parse_chain("chain 2 1 9 0 8 0 1"), std::runtime_error);
  // Output-complemented flag that is not 0/1.
  EXPECT_THROW(parse_chain("chain 2 1 2 7 8 0 1"), std::runtime_error);
}

TEST(ChainIo, CacheFileRoundTripVerifies) {
  const auto c = example_chain();
  cache_entry e;
  e.function = c.simulate();
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 3;
  e.result.seconds = 0.25;
  e.result.chains = {c};

  std::stringstream file;
  save_cache(file, {e});
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].function, e.function);
  EXPECT_EQ(loaded[0].result.outcome, e.result.outcome);
  EXPECT_EQ(loaded[0].result.optimum_gates, 3u);
  ASSERT_EQ(loaded[0].result.chains.size(), 1u);
  EXPECT_TRUE(loaded[0].result.chains[0] == c);
}

TEST(ChainIo, TimeoutEntryWithNoChainsRoundTrips) {
  cache_entry e;
  e.function = truth_table::from_hex(4, "0x8ff8");
  e.result.outcome = stpes::synth::status::timeout;

  std::stringstream file;
  save_cache(file, {e});
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].result.outcome, stpes::synth::status::timeout);
  EXPECT_TRUE(loaded[0].result.chains.empty());
}

TEST(ChainIo, RejectsWrongHeader) {
  std::stringstream file{"stpes-chains v999\n"};
  EXPECT_THROW(load_cache(file), std::runtime_error);
  std::stringstream empty{""};
  EXPECT_THROW(load_cache(empty), std::runtime_error);
}

TEST(ChainIo, RejectsChainThatDoesNotRealizeItsEntry) {
  // The chain computes AND, but the entry claims XOR: simulation
  // re-verification must refuse to load it.
  std::stringstream file;
  file << "stpes-chains v1\n"
       << "entry 0x6 2 success 1 0.0 1\n"
       << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(file), std::runtime_error);
}

TEST(ChainIo, RejectsTruncatedAndMalformedEntries) {
  // Promises two chains, provides one.
  std::stringstream truncated;
  truncated << "stpes-chains v1\n"
            << "entry 0x8 2 success 1 0.0 2\n"
            << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(truncated), std::runtime_error);

  // Entry line with a bogus status.
  std::stringstream bad_status;
  bad_status << "stpes-chains v1\n"
             << "entry 0x8 2 solved 1 0.0 0\n";
  EXPECT_THROW(load_cache(bad_status), std::runtime_error);

  // Chain arity differing from the entry arity.
  std::stringstream bad_arity;
  bad_arity << "stpes-chains v1\n"
            << "entry 0x8 2 success 1 0.0 1\n"
            << "chain 3 1 3 0 8 0 1\n";
  EXPECT_THROW(load_cache(bad_arity), std::runtime_error);
}

TEST(ChainIo, MetaLineRoundTrips) {
  const auto c = example_chain();
  cache_entry e;
  e.function = c.simulate();
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 3;
  e.result.chains = {c};
  e.meta = stpes::service::entry_meta{"stp", 5.0};

  std::stringstream file;
  save_cache(file, {e});
  EXPECT_NE(file.str().find("meta engine=stp budget=5"), std::string::npos)
      << file.str();
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_TRUE(loaded[0].meta.has_value());
  EXPECT_EQ(loaded[0].meta->engine, "stp");
  EXPECT_DOUBLE_EQ(loaded[0].meta->budget_seconds, 5.0);
}

TEST(ChainIo, PartialMetaRoundTripsAndMarksTheLoadedResult) {
  // A success persisted with a budget-truncated enumeration carries
  // `partial=1` on its meta line; loading it must restore
  // `enumeration_complete == false` so the warm path can refuse to trust
  // it under a larger budget.
  const auto c = example_chain();
  cache_entry e;
  e.function = c.simulate();
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 3;
  e.result.enumeration_complete = false;
  e.result.chains = {c};
  e.meta = stpes::service::entry_meta{"stp", 5.0, true};

  std::stringstream file;
  save_cache(file, {e});
  EXPECT_NE(file.str().find("partial=1"), std::string::npos) << file.str();
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_TRUE(loaded[0].meta.has_value());
  EXPECT_TRUE(loaded[0].meta->partial);
  EXPECT_FALSE(loaded[0].result.enumeration_complete);
  // Entries without the token stay complete (backward compatibility with
  // files written before the flag existed).
  cache_entry complete = e;
  complete.result.enumeration_complete = true;
  complete.meta = stpes::service::entry_meta{"stp", 5.0};
  std::stringstream old_file;
  save_cache(old_file, {complete});
  EXPECT_EQ(old_file.str().find("partial"), std::string::npos)
      << old_file.str();
  const auto old_loaded = load_cache(old_file);
  ASSERT_EQ(old_loaded.size(), 1u);
  EXPECT_TRUE(old_loaded[0].result.enumeration_complete);
  EXPECT_FALSE(old_loaded[0].meta->partial);
}

TEST(ChainIo, MetaOnChainFreeEntryDoesNotSwallowTheNextEntry) {
  // A timeout entry (zero chains) with a meta line, followed by another
  // entry: the lookahead must hand the second entry header back.
  cache_entry timed_out;
  timed_out.function = truth_table::from_hex(4, "0x8ff8");
  timed_out.result.outcome = stpes::synth::status::timeout;
  timed_out.meta = stpes::service::entry_meta{"stp", 0.5};
  cache_entry success;
  const auto c = example_chain();
  success.function = c.simulate();
  success.result.outcome = stpes::synth::status::success;
  success.result.optimum_gates = 3;
  success.result.chains = {c};

  std::stringstream file;
  save_cache(file, {timed_out, success});
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded[0].meta.has_value());
  EXPECT_FALSE(loaded[1].meta.has_value());
  ASSERT_EQ(loaded[1].result.chains.size(), 1u);
}

TEST(ChainIo, PreMetaFilesLoadWithoutMetadata) {
  // The exact byte layout written before the meta line existed.
  std::stringstream file;
  file << "stpes-chains v1\n"
       << "entry 0x8 2 success 1 0.0 1\n"
       << "chain 2 1 2 0 8 0 1\n";
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_FALSE(loaded[0].meta.has_value());
}

TEST(ChainIo, UnknownMetaKeysAreIgnoredForForwardCompat) {
  std::stringstream file;
  file << "stpes-chains v1\n"
       << "entry 0x8 2 success 1 0.0 1\n"
       << "meta engine=stp budget=2 solver=kissat-v9\n"
       << "chain 2 1 2 0 8 0 1\n";
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_TRUE(loaded[0].meta.has_value());
  EXPECT_EQ(loaded[0].meta->engine, "stp");
  EXPECT_DOUBLE_EQ(loaded[0].meta->budget_seconds, 2.0);
}

TEST(ChainIo, MalformedMetaLinesAreRejected) {
  // Token without '='.
  std::stringstream no_eq;
  no_eq << "stpes-chains v1\n"
        << "entry 0x8 2 success 1 0.0 1\n"
        << "meta engine\n"
        << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(no_eq), std::runtime_error);

  // Non-numeric / negative budgets.
  std::stringstream bad_budget;
  bad_budget << "stpes-chains v1\n"
             << "entry 0x8 2 success 1 0.0 1\n"
             << "meta budget=fast\n"
             << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(bad_budget), std::runtime_error);

  std::stringstream negative;
  negative << "stpes-chains v1\n"
           << "entry 0x8 2 success 1 0.0 1\n"
           << "meta budget=-1\n"
           << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(negative), std::runtime_error);
}

TEST(ChainIo, MissingCacheFileIsEmptyNotError) {
  EXPECT_TRUE(load_cache_file("/nonexistent/stpes-cache.txt").empty());
  EXPECT_TRUE(load_cache_file_lenient("/nonexistent/x.txt").entries.empty());
}

/// Builds a healthy three-entry v2 file (AND, XOR, OR of two variables).
std::string three_entry_file() {
  std::vector<cache_entry> entries;
  for (const unsigned op : {0x8u, 0x6u, 0xEu}) {
    boolean_chain c{2};
    c.set_output(c.add_step(op, 0, 1));
    cache_entry e;
    e.function = c.simulate();
    e.result.outcome = stpes::synth::status::success;
    e.result.optimum_gates = 1;
    e.result.chains = {c};
    entries.push_back(std::move(e));
  }
  std::ostringstream os;
  save_cache(os, entries);
  return os.str();
}

TEST(ChainIo, V3FilesCarryPerEntryCrcAndRoundTrip) {
  const auto text = three_entry_file();
  EXPECT_EQ(text.rfind("stpes-chains v3\n", 0), 0u) << text;
  // One `crc <8 hex digits>` line per entry.
  std::size_t crc_lines = 0;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("crc ", 0) == 0) {
      ++crc_lines;
      EXPECT_EQ(line.size(), 4u + 8u) << line;
    }
  }
  EXPECT_EQ(crc_lines, 3u);
  // Both loaders accept the healthy file in full.
  std::istringstream strict{text};
  EXPECT_EQ(load_cache(strict).size(), 3u);
  std::istringstream lenient{text};
  const auto report = load_cache_lenient(lenient);
  EXPECT_EQ(report.entries.size(), 3u);
  EXPECT_TRUE(report.skipped.empty());
}

TEST(ChainIo, V2FilesStillLoadReadOnly) {
  // Reject-never-migrate: the previous generation keeps loading in both
  // modes.  The per-entry CRC covers only the entry block (never the
  // header line), so a v2 file is byte-for-byte a v3 file with the old
  // header — as long as it contains no multi-output entries.
  auto text = three_entry_file();
  const auto pos = text.find("stpes-chains v3");
  ASSERT_EQ(pos, 0u);
  text.replace(0, 15, "stpes-chains v2");
  std::istringstream strict{text};
  EXPECT_EQ(load_cache(strict).size(), 3u);
  std::istringstream lenient{text};
  const auto report = load_cache_lenient(lenient);
  EXPECT_EQ(report.entries.size(), 3u);
  EXPECT_TRUE(report.skipped.empty());
}

TEST(ChainIo, V1FilesStillLoadWithoutCrcLines) {
  // The previous generation's format: no crc lines, simulation is the
  // only integrity check.  Reject-never-migrate means v1 must keep
  // loading in both modes.
  std::string v1 =
      "stpes-chains v1\n"
      "entry 0x8 2 success 1 0.0 1\n"
      "chain 2 1 2 0 8 0 1\n";
  std::istringstream strict{v1};
  EXPECT_EQ(load_cache(strict).size(), 1u);
  std::istringstream lenient{v1};
  const auto report = load_cache_lenient(lenient);
  EXPECT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(report.skipped.empty());
}

TEST(ChainIo, CorruptionMatrixTruncatedFile) {
  // Torn write: the file ends mid-entry.  The intact prefix loads, the
  // tail becomes one skip report.
  auto text = three_entry_file();
  text.resize(text.size() * 2 / 3);
  text.resize(text.rfind('\n') + 1);  // cut at a line boundary
  std::istringstream is{text};
  const auto report = load_cache_lenient(is);
  EXPECT_GE(report.entries.size(), 1u);
  EXPECT_LT(report.entries.size(), 3u);
  ASSERT_GE(report.skipped.size(), 1u);
  EXPECT_GT(report.skipped[0].line, 1u);
  EXPECT_FALSE(report.skipped[0].reason.empty());
}

TEST(ChainIo, CorruptionMatrixBitFlippedEntry) {
  // Flip one payload bit in the middle entry: its CRC no longer matches,
  // it is skipped with a crc-mismatch report, and the neighbours load.
  auto text = three_entry_file();
  const auto pos = text.find("entry 0x6");
  ASSERT_NE(pos, std::string::npos);
  // Damage a digit of the seconds field: still parseable, CRC-different.
  const auto sec = text.find(" 0 ", pos);
  ASSERT_NE(sec, std::string::npos);
  text[sec + 1] = '1';
  std::istringstream is{text};
  const auto report = load_cache_lenient(is);
  EXPECT_EQ(report.entries.size(), 2u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_NE(report.skipped[0].reason.find("crc mismatch"),
            std::string::npos)
      << report.skipped[0].reason;

  // The strict loader refuses the same damage outright.
  std::istringstream strict{text};
  EXPECT_THROW(load_cache(strict), std::runtime_error);
}

TEST(ChainIo, CorruptionMatrixDuplicatedHeader) {
  // A botched concatenation duplicates the header mid-file; the stray
  // header is reported and every entry still loads.
  auto text = three_entry_file();
  const auto pos = text.find("entry 0xe");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "stpes-chains v2\n");
  std::istringstream is{text};
  const auto report = load_cache_lenient(is);
  EXPECT_EQ(report.entries.size(), 3u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].reason, "duplicate header");
}

TEST(ChainIo, CorruptionMatrixZeroByteFile) {
  std::istringstream is{""};
  const auto report = load_cache_lenient(is);
  EXPECT_TRUE(report.entries.empty());
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_NE(report.skipped[0].reason.find("missing header"),
            std::string::npos);
}

TEST(ChainIo, CorruptionMatrixGarbageHeaderStillSalvages) {
  // A torn header write: lenient mode reports it and salvages the entries
  // (simulation re-verification is the integrity floor).
  std::string text =
      "stpes-chain\n"  // torn mid-word
      "entry 0x8 2 success 1 0.0 1\n"
      "chain 2 1 2 0 8 0 1\n";
  std::istringstream is{text};
  const auto report = load_cache_lenient(is);
  EXPECT_EQ(report.entries.size(), 1u);
  // Two reports: the header is missing, and the torn line itself is stray.
  ASSERT_EQ(report.skipped.size(), 2u);
  EXPECT_NE(report.skipped[0].reason.find("missing header"),
            std::string::npos);
  EXPECT_EQ(report.skipped[1].reason, "stray line: stpes-chain");
}

TEST(ChainIo, LenientLoadStillRejectsUnsupportedVersions) {
  // Reject-never-migrate: a newer-generation file must fail loudly in
  // BOTH modes — silently loading zero entries would read as "cold
  // cache" when the truth is "cannot read this format".
  std::istringstream is{"stpes-chains v999\nentry 0x8 2 success 1 0.0 0\n"};
  EXPECT_THROW(load_cache_lenient(is), std::runtime_error);
}

TEST(ChainIo, AtomicSaveReplacesTheFileWholesale) {
  const std::string path = ::testing::TempDir() + "chain_io_atomic.txt";
  boolean_chain c{2};
  c.set_output(c.add_step(0x8, 0, 1));
  cache_entry e;
  e.function = c.simulate();
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 1;
  e.result.chains = {c};

  save_cache_file(path, {e});
  save_cache_file(path, {e, e});  // overwrite in place
  std::ifstream is{path};
  const std::string content{std::istreambuf_iterator<char>{is},
                            std::istreambuf_iterator<char>{}};
  // The second save fully replaced the first (no interleaved halves) and
  // left no scratch file behind.
  EXPECT_EQ(content.rfind("stpes-chains v3\n", 0), 0u);
  const auto loaded = load_cache_file(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(std::remove((path + ".tmp.0").c_str()), -1);
  std::remove(path.c_str());
}

/// A 2-output full-adder chain: sum = a ^ b ^ c, carry = maj(a, b, c).
boolean_chain full_adder_chain() {
  boolean_chain c{3};
  const auto ab = c.add_step(0x6, 0, 1);     // a ^ b
  const auto sum = c.add_step(0x6, 2, ab);   // (a ^ b) ^ c
  const auto g1 = c.add_step(0x8, 0, 1);     // a & b
  const auto g2 = c.add_step(0x8, 2, ab);    // c & (a ^ b)
  const auto carry = c.add_step(0xE, g1, g2);
  c.set_output(sum);
  c.add_output(carry);
  return c;
}

TEST(ChainIo, MultiOutputChainLineRoundTrips) {
  const auto original = full_adder_chain();
  const auto line = serialize_chain(original);
  EXPECT_EQ(line.rfind("mchain 3 5 2 ", 0), 0u) << line;
  const auto parsed = parse_chain(line);
  EXPECT_TRUE(parsed == original);
  ASSERT_EQ(parsed.num_outputs(), 2u);
  EXPECT_EQ(parsed.simulate_output(0), truth_table::from_hex(3, "96"));
  EXPECT_EQ(parsed.simulate_output(1), truth_table::from_hex(3, "e8"));
}

TEST(ChainIo, SingleOutputChainLinesAreUnchangedByTheV3Grammar) {
  // The m = 1 grammar (keyword, field order, byte layout) must stay
  // byte-identical across format generations: SYNTH replies and old cache
  // files both depend on it.
  boolean_chain c{2};
  c.set_output(c.add_step(0x8, 0, 1));
  EXPECT_EQ(serialize_chain(c), "chain 2 1 2 0 8 0 1");
}

TEST(ChainIo, MalformedMchainLinesAreRejected) {
  // Too few outputs for the keyword (m = 1 lines must use `chain`).
  EXPECT_THROW(parse_chain("mchain 2 1 1 2 0 8 0 1"), std::runtime_error);
  // Token count not matching m and num_steps.
  EXPECT_THROW(parse_chain("mchain 2 1 2 2 0 8 0 1"), std::runtime_error);
  // Output signal that does not exist.
  EXPECT_THROW(parse_chain("mchain 2 1 2 2 0 9 0 8 0 1"),
               std::runtime_error);
  // Output-complemented flag that is not 0/1.
  EXPECT_THROW(parse_chain("mchain 2 1 2 2 0 2 7 8 0 1"),
               std::runtime_error);
}

TEST(ChainIo, MultiOutputEntryRoundTripVerifiesEveryOutput) {
  const auto c = full_adder_chain();
  cache_entry e;
  e.functions = {c.simulate_output(0), c.simulate_output(1)};
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 5;
  e.result.chains = {c};

  std::stringstream file;
  save_cache(file, {e});
  EXPECT_NE(file.str().find("entry 0x96,0xe8 3 success 5"),
            std::string::npos)
      << file.str();
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].targets(), e.functions);
  ASSERT_EQ(loaded[0].result.chains.size(), 1u);
  EXPECT_TRUE(loaded[0].result.chains[0] == c);
}

TEST(ChainIo, CorruptionMatrixMultiEntryWithSwappedOutputsIsRejected) {
  // The entry lists (carry, sum) but the chain realizes (sum, carry):
  // per-output re-verification must refuse it even though the *set* of
  // realized functions matches.
  const auto c = full_adder_chain();
  cache_entry e;
  e.functions = {c.simulate_output(1), c.simulate_output(0)};  // swapped
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 5;
  e.result.chains = {c};
  std::stringstream file;
  save_cache(file, {e});
  EXPECT_THROW(load_cache(file), std::runtime_error);
}

TEST(ChainIo, CorruptionMatrixOutputCountMismatchIsRejected) {
  // Entry lists two functions but the chain only carries one output.
  boolean_chain c{3};
  c.set_output(c.add_step(0x6, 0, 1));
  cache_entry e;
  e.functions = {c.simulate(), truth_table::from_hex(3, "e8")};
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 1;
  e.result.chains = {c};
  std::stringstream file;
  save_cache(file, {e});
  std::istringstream strict{file.str()};
  EXPECT_THROW(load_cache(strict), std::runtime_error);
  std::istringstream lenient{file.str()};
  const auto report = load_cache_lenient(lenient);
  EXPECT_TRUE(report.entries.empty());
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_NE(report.skipped[0].reason.find("outputs"), std::string::npos)
      << report.skipped[0].reason;
}

TEST(ChainIo, CorruptionMatrixMultiEntryInPreV3FileIsDamageNotData) {
  // Reject-never-migrate also cuts the other way: a v2 header promises a
  // single-output file, so a comma list inside one is damage.  Lenient
  // mode skips the entry, strict mode throws.
  const auto c = full_adder_chain();
  cache_entry e;
  e.functions = {c.simulate_output(0), c.simulate_output(1)};
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 5;
  e.result.chains = {c};
  std::stringstream file;
  save_cache(file, {e});
  auto text = file.str();
  text.replace(0, 15, "stpes-chains v2");
  std::istringstream strict{text};
  EXPECT_THROW(load_cache(strict), std::runtime_error);
  std::istringstream lenient{text};
  const auto report = load_cache_lenient(lenient);
  EXPECT_TRUE(report.entries.empty());
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_NE(report.skipped[0].reason.find("needs v3"), std::string::npos)
      << report.skipped[0].reason;
}

TEST(ChainIo, RealSynthesisResultSurvivesDisk) {
  // End to end: synthesize, persist all optimum chains, reload, re-verify.
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto r = stpes::core::exact_synthesis(
      f, stpes::core::engine::stp, 60.0);
  ASSERT_TRUE(r.ok());

  cache_entry e;
  e.function = f;
  e.result = r;
  std::stringstream file;
  save_cache(file, {e});
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_EQ(loaded[0].result.chains.size(), r.chains.size());
  for (std::size_t i = 0; i < r.chains.size(); ++i) {
    EXPECT_TRUE(loaded[0].result.chains[i] == r.chains[i]);
    EXPECT_EQ(loaded[0].result.chains[i].simulate(), f);
  }
}

}  // namespace
