/// \file chain_io_test.cpp
/// \brief Round-trip and rejection tests for the chain/result text format.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "core/exact_synthesis.hpp"
#include "service/chain_io.hpp"

namespace {

using stpes::chain::boolean_chain;
using stpes::service::cache_entry;
using stpes::service::load_cache;
using stpes::service::load_cache_file;
using stpes::service::parse_chain;
using stpes::service::save_cache;
using stpes::service::serialize_chain;
using stpes::tt::truth_table;

boolean_chain example_chain() {
  // x4 = x0 & x1; x5 = x2 ^ x3; f = !(x4 | x5)
  boolean_chain c{4};
  const auto a = c.add_step(0x8, 0, 1);
  const auto b = c.add_step(0x6, 2, 3);
  c.set_output(c.add_step(0xE, a, b), true);
  return c;
}

TEST(ChainIo, ChainRoundTripPreservesEverything) {
  const auto original = example_chain();
  const auto line = serialize_chain(original);
  const auto parsed = parse_chain(line);
  EXPECT_TRUE(parsed == original);
  EXPECT_EQ(parsed.simulate(), original.simulate());
  EXPECT_TRUE(parsed.output_complemented());
}

TEST(ChainIo, StepFreeChainRoundTrips) {
  boolean_chain c{3};
  c.set_output(1);  // f = x1
  const auto parsed = parse_chain(serialize_chain(c));
  EXPECT_TRUE(parsed == c);
  EXPECT_EQ(parsed.simulate(), truth_table::nth_var(3, 1));
}

TEST(ChainIo, MalformedChainLinesAreRejected) {
  // Wrong keyword.
  EXPECT_THROW(parse_chain("chian 2 1 2 0 8 0 1"), std::runtime_error);
  // Too few header fields.
  EXPECT_THROW(parse_chain("chain 2 1"), std::runtime_error);
  // Non-numeric field.
  EXPECT_THROW(parse_chain("chain 2 one 2 0 8 0 1"), std::runtime_error);
  // Step token count does not match num_steps.
  EXPECT_THROW(parse_chain("chain 2 2 2 0 8 0 1"), std::runtime_error);
  // Operator out of 4-bit range.
  EXPECT_THROW(parse_chain("chain 2 1 2 0 16 0 1"), std::runtime_error);
  // Fanin referencing a later signal.
  EXPECT_THROW(parse_chain("chain 2 1 2 0 8 0 2"), std::runtime_error);
  // Output signal that does not exist.
  EXPECT_THROW(parse_chain("chain 2 1 9 0 8 0 1"), std::runtime_error);
  // Output-complemented flag that is not 0/1.
  EXPECT_THROW(parse_chain("chain 2 1 2 7 8 0 1"), std::runtime_error);
}

TEST(ChainIo, CacheFileRoundTripVerifies) {
  const auto c = example_chain();
  cache_entry e;
  e.function = c.simulate();
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 3;
  e.result.seconds = 0.25;
  e.result.chains = {c};

  std::stringstream file;
  save_cache(file, {e});
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].function, e.function);
  EXPECT_EQ(loaded[0].result.outcome, e.result.outcome);
  EXPECT_EQ(loaded[0].result.optimum_gates, 3u);
  ASSERT_EQ(loaded[0].result.chains.size(), 1u);
  EXPECT_TRUE(loaded[0].result.chains[0] == c);
}

TEST(ChainIo, TimeoutEntryWithNoChainsRoundTrips) {
  cache_entry e;
  e.function = truth_table::from_hex(4, "0x8ff8");
  e.result.outcome = stpes::synth::status::timeout;

  std::stringstream file;
  save_cache(file, {e});
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].result.outcome, stpes::synth::status::timeout);
  EXPECT_TRUE(loaded[0].result.chains.empty());
}

TEST(ChainIo, RejectsWrongHeader) {
  std::stringstream file{"stpes-chains v999\n"};
  EXPECT_THROW(load_cache(file), std::runtime_error);
  std::stringstream empty{""};
  EXPECT_THROW(load_cache(empty), std::runtime_error);
}

TEST(ChainIo, RejectsChainThatDoesNotRealizeItsEntry) {
  // The chain computes AND, but the entry claims XOR: simulation
  // re-verification must refuse to load it.
  std::stringstream file;
  file << "stpes-chains v1\n"
       << "entry 0x6 2 success 1 0.0 1\n"
       << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(file), std::runtime_error);
}

TEST(ChainIo, RejectsTruncatedAndMalformedEntries) {
  // Promises two chains, provides one.
  std::stringstream truncated;
  truncated << "stpes-chains v1\n"
            << "entry 0x8 2 success 1 0.0 2\n"
            << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(truncated), std::runtime_error);

  // Entry line with a bogus status.
  std::stringstream bad_status;
  bad_status << "stpes-chains v1\n"
             << "entry 0x8 2 solved 1 0.0 0\n";
  EXPECT_THROW(load_cache(bad_status), std::runtime_error);

  // Chain arity differing from the entry arity.
  std::stringstream bad_arity;
  bad_arity << "stpes-chains v1\n"
            << "entry 0x8 2 success 1 0.0 1\n"
            << "chain 3 1 3 0 8 0 1\n";
  EXPECT_THROW(load_cache(bad_arity), std::runtime_error);
}

TEST(ChainIo, MetaLineRoundTrips) {
  const auto c = example_chain();
  cache_entry e;
  e.function = c.simulate();
  e.result.outcome = stpes::synth::status::success;
  e.result.optimum_gates = 3;
  e.result.chains = {c};
  e.meta = stpes::service::entry_meta{"stp", 5.0};

  std::stringstream file;
  save_cache(file, {e});
  EXPECT_NE(file.str().find("meta engine=stp budget=5"), std::string::npos)
      << file.str();
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_TRUE(loaded[0].meta.has_value());
  EXPECT_EQ(loaded[0].meta->engine, "stp");
  EXPECT_DOUBLE_EQ(loaded[0].meta->budget_seconds, 5.0);
}

TEST(ChainIo, MetaOnChainFreeEntryDoesNotSwallowTheNextEntry) {
  // A timeout entry (zero chains) with a meta line, followed by another
  // entry: the lookahead must hand the second entry header back.
  cache_entry timed_out;
  timed_out.function = truth_table::from_hex(4, "0x8ff8");
  timed_out.result.outcome = stpes::synth::status::timeout;
  timed_out.meta = stpes::service::entry_meta{"stp", 0.5};
  cache_entry success;
  const auto c = example_chain();
  success.function = c.simulate();
  success.result.outcome = stpes::synth::status::success;
  success.result.optimum_gates = 3;
  success.result.chains = {c};

  std::stringstream file;
  save_cache(file, {timed_out, success});
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded[0].meta.has_value());
  EXPECT_FALSE(loaded[1].meta.has_value());
  ASSERT_EQ(loaded[1].result.chains.size(), 1u);
}

TEST(ChainIo, PreMetaFilesLoadWithoutMetadata) {
  // The exact byte layout written before the meta line existed.
  std::stringstream file;
  file << "stpes-chains v1\n"
       << "entry 0x8 2 success 1 0.0 1\n"
       << "chain 2 1 2 0 8 0 1\n";
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_FALSE(loaded[0].meta.has_value());
}

TEST(ChainIo, UnknownMetaKeysAreIgnoredForForwardCompat) {
  std::stringstream file;
  file << "stpes-chains v1\n"
       << "entry 0x8 2 success 1 0.0 1\n"
       << "meta engine=stp budget=2 solver=kissat-v9\n"
       << "chain 2 1 2 0 8 0 1\n";
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_TRUE(loaded[0].meta.has_value());
  EXPECT_EQ(loaded[0].meta->engine, "stp");
  EXPECT_DOUBLE_EQ(loaded[0].meta->budget_seconds, 2.0);
}

TEST(ChainIo, MalformedMetaLinesAreRejected) {
  // Token without '='.
  std::stringstream no_eq;
  no_eq << "stpes-chains v1\n"
        << "entry 0x8 2 success 1 0.0 1\n"
        << "meta engine\n"
        << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(no_eq), std::runtime_error);

  // Non-numeric / negative budgets.
  std::stringstream bad_budget;
  bad_budget << "stpes-chains v1\n"
             << "entry 0x8 2 success 1 0.0 1\n"
             << "meta budget=fast\n"
             << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(bad_budget), std::runtime_error);

  std::stringstream negative;
  negative << "stpes-chains v1\n"
           << "entry 0x8 2 success 1 0.0 1\n"
           << "meta budget=-1\n"
           << "chain 2 1 2 0 8 0 1\n";
  EXPECT_THROW(load_cache(negative), std::runtime_error);
}

TEST(ChainIo, MissingCacheFileIsEmptyNotError) {
  EXPECT_TRUE(load_cache_file("/nonexistent/stpes-cache.txt").empty());
}

TEST(ChainIo, RealSynthesisResultSurvivesDisk) {
  // End to end: synthesize, persist all optimum chains, reload, re-verify.
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto r = stpes::core::exact_synthesis(
      f, stpes::core::engine::stp, 60.0);
  ASSERT_TRUE(r.ok());

  cache_entry e;
  e.function = f;
  e.result = r;
  std::stringstream file;
  save_cache(file, {e});
  const auto loaded = load_cache(file);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_EQ(loaded[0].result.chains.size(), r.chains.size());
  for (std::size_t i = 0; i < r.chains.size(); ++i) {
    EXPECT_TRUE(loaded[0].result.chains[i] == r.chains[i]);
    EXPECT_EQ(loaded[0].result.chains[i].simulate(), f);
  }
}

}  // namespace
