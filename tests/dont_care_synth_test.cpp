#include <gtest/gtest.h>

#include "synth/stp_synth.hpp"
#include "util/rng.hpp"

namespace {

using stpes::synth::status;
using stpes::synth::stp_engine;
using stpes::tt::isf;
using stpes::tt::truth_table;

TEST(DontCareSynthesis, FullySpecifiedMatchesExactSynthesis) {
  const auto f = truth_table::from_hex(4, "0x8ff8");
  stp_engine engine;
  const auto dc = engine.run_with_dont_cares(isf::from_function(f));
  ASSERT_TRUE(dc.ok());
  EXPECT_EQ(dc.optimum_gates, 3u);
  for (const auto& c : dc.chains) {
    EXPECT_EQ(c.simulate(), f);
  }
}

TEST(DontCareSynthesis, DontCaresNeverHurt) {
  // Relaxing minterms can only keep or shrink the optimum size.
  stpes::util::rng rng{2718};
  for (int iteration = 0; iteration < 8; ++iteration) {
    truth_table f{3, rng.next_u64() & 0xFF};
    stp_engine engine;
    const auto exact = engine.run_with_dont_cares(isf::from_function(f));
    ASSERT_TRUE(exact.ok());
    truth_table care = truth_table::constant(3, true);
    care.set_bit(rng.next_below(8), false);
    care.set_bit(rng.next_below(8), false);
    stp_engine relaxed_engine;
    const auto relaxed =
        relaxed_engine.run_with_dont_cares(isf{f & care, care});
    ASSERT_TRUE(relaxed.ok());
    EXPECT_LE(relaxed.optimum_gates, exact.optimum_gates);
    const isf spec{f & care, care};
    for (const auto& c : relaxed.chains) {
      EXPECT_TRUE(spec.accepts(c.simulate()));
    }
  }
}

TEST(DontCareSynthesis, BigDontCareSetCollapsesToLiteral) {
  // Only two care minterms, both consistent with x0: zero gates.
  truth_table on{3};
  on.set_bit(0b001, true);
  truth_table care{3};
  care.set_bit(0b001, true);
  care.set_bit(0b110, true);  // x0 = 0 there, and requirement is 0
  stp_engine engine;
  const auto r = engine.run_with_dont_cares(isf{on, care});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 0u);
  EXPECT_TRUE(isf(on, care).accepts(r.best().simulate()));
}

TEST(DontCareSynthesis, ConstantAcceptance) {
  // Care set only where f would be 1: constant-1 is accepted.
  truth_table on{2};
  on.set_bit(1, true);
  on.set_bit(2, true);
  stp_engine engine;
  const auto r = engine.run_with_dont_cares(isf{on, on});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.best().simulate().is_const1());
}

TEST(DontCareSynthesis, MajWithOneDontCareDropsToTwoGates) {
  // MAJ3 needs 4 gates exactly; freeing the right minterms must reach a
  // strictly smaller network (e.g. freeing 0b101 and 0b010 admits
  // (x0 & x1) | x2-style functions).
  const auto maj = truth_table::from_hex(3, "0xe8");
  truth_table care = truth_table::constant(3, true);
  care.set_bit(0b101, false);
  care.set_bit(0b010, false);
  stp_engine engine;
  const auto r = engine.run_with_dont_cares(isf{maj & care, care});
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.optimum_gates, 4u);
  const isf spec{maj & care, care};
  for (const auto& c : r.chains) {
    EXPECT_TRUE(spec.accepts(c.simulate()));
  }
}

TEST(DontCareSynthesis, TimeoutPropagates) {
  const auto f = truth_table::from_hex(4, "0xcafe");
  stp_engine engine;
  stpes::core::run_context ctx{1e-9};
  const auto r = engine.run_with_dont_cares(isf::from_function(f), &ctx);
  EXPECT_EQ(r.outcome, status::timeout);
}

}  // namespace
