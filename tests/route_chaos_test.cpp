/// \file route_chaos_test.cpp
/// \brief Kill-and-restart chaos for the routing tier.
///
/// The scenario the tier exists for: a fleet of three TCP shards behind a
/// router, one of them dying and coming back mid-workload.  The invariants
/// checked after every storm:
///
///   * no lost replies — every request in a BATCH gets exactly one
///     RESULT block, in request order (the counted framing);
///   * no cross-wiring — every successful chain simulates to the exact
///     function its request asked for;
///   * no hangs — every forward is bounded by connect/read deadlines, so
///     the tests finishing at all is part of the assertion.
///
/// The mid-batch kill is wall-clock racy by design (the kill lands
/// wherever it lands); the assertions are therefore pure invariants that
/// hold for every interleaving.  The deterministic-round test forces the
/// failover path explicitly: kill a shard *between* batches, so every key
/// homed on it must fail over.  Iteration counts are kept small — CI runs
/// this suite 100x under TSan.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "route/router.hpp"
#include "server/client.hpp"
#include "server/resilient_client.hpp"
#include "server/server.hpp"
#include "server/tcp_socket_server.hpp"
#include "tt/truth_table.hpp"
#include "util/failpoint.hpp"

namespace {

using stpes::core::engine;
using stpes::route::router;
using stpes::route::router_options;
using stpes::server::endpoint;
using stpes::server::line_client;
using stpes::server::resilient_client;
using stpes::server::retry_policy;
using stpes::server::server_options;
using stpes::server::synthesis_server;
using stpes::server::tcp_listen_spec;
using stpes::server::tcp_socket_server;
using stpes::tt::truth_table;

/// One restartable TCP shard.
struct shard {
  explicit shard(std::uint16_t port = 0) {
    server_options opts;
    opts.default_timeout_seconds = 60.0;
    opts.num_threads = 2;
    opts.drain_grace_seconds = 0.05;
    daemon = std::make_unique<synthesis_server>(opts);
    listener = std::make_unique<tcp_socket_server>(
        *daemon, tcp_listen_spec{"127.0.0.1", port});
    thread = std::thread{[this] { listener->run(); }};
  }

  ~shard() { stop(); }

  void stop() {
    if (thread.joinable()) {
      listener->stop();
      thread.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return listener->port(); }
  [[nodiscard]] std::string spec() const {
    return "127.0.0.1:" + std::to_string(port());
  }

  std::unique_ptr<synthesis_server> daemon;
  std::unique_ptr<tcp_socket_server> listener;
  std::thread thread;
};

router_options chaos_router_options(const std::vector<std::string>& specs) {
  router_options opts;
  opts.backends = specs;
  opts.fail_threshold = 1;  // eject on first transport failure
  opts.probation_ms = 150;
  opts.probe_interval_ms = 0;
  opts.backend_policy.max_attempts = 2;
  opts.backend_policy.connect_timeout_ms = 400;
  opts.backend_policy.io_timeout_ms = 10000;
  opts.backend_policy.base_backoff_ms = 1;
  opts.backend_policy.max_backoff_ms = 4;
  opts.min_retry_hint_ms = 20;
  return opts;
}

/// The test workload: distinct 3-input functions spread over the ring.
std::vector<truth_table> workload(std::size_t n) {
  std::vector<truth_table> fns;
  for (unsigned v = 1; fns.size() < n; v += 11) {
    fns.push_back(truth_table{3, v & 0xff});
  }
  return fns;
}

/// Sends one BATCH with every function and checks the reply invariants:
/// exactly one in-order reply per request, every success simulating to
/// its own function.  Returns the number of non-success replies.
std::size_t run_batch_and_verify(line_client& client,
                                 const std::vector<truth_table>& fns,
                                 bool require_all_ok) {
  std::vector<std::pair<engine, truth_table>> requests;
  requests.reserve(fns.size());
  for (const auto& f : fns) {
    requests.emplace_back(engine::stp, f);
  }
  const auto replies = client.batch(requests);
  EXPECT_EQ(replies.size(), fns.size()) << "lost or duplicated replies";
  std::size_t not_ok = 0;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const auto& r = replies[i];
    if (r.ok && r.outcome == stpes::synth::status::success) {
      EXPECT_FALSE(r.chains.empty()) << "success with no chain at " << i;
      if (!r.chains.empty()) {
        EXPECT_EQ(r.chains.front().simulate(), fns[i])
            << "cross-wired reply at index " << i;
      }
    } else {
      ++not_ok;
      // Whatever happened, it must be an *answered* failure: busy (shed
      // or degraded) or an ERR mapped into the result block.
      EXPECT_TRUE(r.busy || !r.error.empty() ||
                  r.outcome != stpes::synth::status::success)
          << "unanswered request at index " << i;
    }
  }
  if (require_all_ok) {
    EXPECT_EQ(not_ok, 0u);
  }
  return not_ok;
}

/// Runs `router.serve` over POSIX pipes on its own thread and hands the
/// test a `line_client` talking to it (mirrors server_test's pipe_session).
class router_session {
public:
  explicit router_session(router& r) : router_(r) {
    EXPECT_EQ(::pipe(to_router_), 0);
    EXPECT_EQ(::pipe(from_router_), 0);
    router_in_ =
        std::make_unique<stpes::server::fd_iostream>(to_router_[0]);
    router_out_ =
        std::make_unique<stpes::server::fd_iostream>(from_router_[1]);
    client_in_ =
        std::make_unique<stpes::server::fd_iostream>(from_router_[0]);
    client_out_ =
        std::make_unique<stpes::server::fd_iostream>(to_router_[1]);
    thread_ = std::thread([this] {
      router_.serve(*router_in_, *router_out_);
      router_out_->flush();
      ::close(from_router_[1]);
      router_write_closed_ = true;
    });
    client_ = std::make_unique<line_client>(*client_in_, *client_out_);
  }

  ~router_session() {
    finish();
    ::close(to_router_[0]);
    ::close(from_router_[0]);
    if (!router_write_closed_) {
      ::close(from_router_[1]);
    }
  }

  [[nodiscard]] line_client& client() { return *client_; }

  void finish() {
    if (thread_.joinable()) {
      client_out_->flush();
      ::close(to_router_[1]);
      thread_.join();
    }
  }

private:
  router& router_;
  int to_router_[2] = {-1, -1};
  int from_router_[2] = {-1, -1};
  std::unique_ptr<stpes::server::fd_iostream> router_in_;
  std::unique_ptr<stpes::server::fd_iostream> router_out_;
  std::unique_ptr<stpes::server::fd_iostream> client_in_;
  std::unique_ptr<stpes::server::fd_iostream> client_out_;
  std::unique_ptr<line_client> client_;
  std::thread thread_;
  bool router_write_closed_ = false;
};

class RouteChaos : public ::testing::Test {
protected:
  void SetUp() override {
    std::signal(SIGPIPE, SIG_IGN);
    if (stpes::util::failpoints_compiled_in()) {
      stpes::util::failpoint_registry::instance().clear_all();
    }
  }
  void TearDown() override {
    if (stpes::util::failpoints_compiled_in()) {
      stpes::util::failpoint_registry::instance().clear_all();
    }
  }
};

TEST_F(RouteChaos, KillAndRestartBetweenBatchesLosesNoRequests) {
  shard a, b, c;
  router r{chaos_router_options({a.spec(), b.spec(), c.spec()})};
  router_session session{r};
  const auto fns = workload(12);

  // Round 1: full fleet — everything succeeds.
  run_batch_and_verify(session.client(), fns, /*require_all_ok=*/true);

  // Round 2: one shard dead — every key it owned fails over (and only
  // those: the ring tells us exactly how many), still zero losses, zero
  // cross-wiring.
  std::uint64_t owned_by_b = 0;
  for (const auto& f : fns) {
    stpes::server::synth_args args;
    args.function = f;
    const auto h = stpes::route::fnv1a64(router::request_key(args));
    if (r.ring().home(h) == 1) {
      ++owned_by_b;
    }
  }
  const auto port = b.port();
  b.stop();
  run_batch_and_verify(session.client(), fns, /*require_all_ok=*/true);
  EXPECT_EQ(r.counters().failovers, owned_by_b)
      << "every key homed on the dead shard (and only those) fails over";

  // Round 3: shard back (same port), probation elapsed — the fleet heals
  // and the batch still answers everything.
  shard revived{port};
  std::this_thread::sleep_for(
      std::chrono::milliseconds(r.options().probation_ms + 50));
  r.probe_once();
  run_batch_and_verify(session.client(), fns, /*require_all_ok=*/true);
}

TEST_F(RouteChaos, KillMidBatchEveryRequestIsAnswered) {
  shard a, b, c;
  router r{chaos_router_options({a.spec(), b.spec(), c.spec()})};
  router_session session{r};
  const auto fns = workload(24);

  // The kill lands somewhere inside the batch (the exact request index is
  // the race under test).  Every interleaving must satisfy the
  // invariants; whether individual requests failed over or errored is
  // timing-dependent and deliberately unasserted.
  std::thread killer{[&b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    b.stop();
  }};
  run_batch_and_verify(session.client(), fns, /*require_all_ok=*/false);
  killer.join();

  // The batch after the dust settles is clean again (dead shard is
  // ejected; survivors own the whole ring).
  run_batch_and_verify(session.client(), fns, /*require_all_ok=*/true);
}

TEST_F(RouteChaos, RestartMidBatchIsRiddenOut) {
  shard a, b, c;
  router r{chaos_router_options({a.spec(), b.spec(), c.spec()})};
  router_session session{r};
  const auto fns = workload(24);

  const auto port = c.port();
  std::unique_ptr<shard> revived;
  std::thread bouncer{[&c, &revived, port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    c.stop();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    revived = std::make_unique<shard>(port);
  }};
  run_batch_and_verify(session.client(), fns, /*require_all_ok=*/false);
  bouncer.join();
  run_batch_and_verify(session.client(), fns, /*require_all_ok=*/true);
}

TEST_F(RouteChaos, NetworkFailpointStormOverTcpFrontend) {
  if (!stpes::util::failpoints_compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = stpes::util::failpoint_registry::instance();

  shard a, b, c;
  router r{chaos_router_options({a.spec(), b.spec(), c.spec()})};
  // A real TCP front for the router, so the driving path (resilient
  // client) rides the same storm as the backend forwards.
  tcp_socket_server front{r, tcp_listen_spec{"127.0.0.1", 0}};
  std::thread front_thread{[&front] { front.run(); }};

  endpoint ep;
  ep.transport = endpoint::kind::tcp;
  ep.host_or_path = "127.0.0.1";
  ep.port = front.port();
  retry_policy policy;
  policy.max_attempts = 6;
  policy.connect_timeout_ms = 1000;
  policy.io_timeout_ms = 10000;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 16;
  resilient_client client{ep, policy};

  // One deterministic injection per request, rotating through every
  // network seam: each `once` trigger fires on the very next evaluation
  // — somewhere inside the round trip in flight (driving client, router
  // session, backend forward, or shard reply) — and disarms, so each
  // request faces exactly one torn read, torn write, or partial write
  // and the retry machinery must absorb it.
  const char* seams[] = {"fd_stream.read", "fd_stream.write",
                         "fd_stream.write.partial"};
  const auto fns = workload(12);
  for (std::size_t i = 0; i < fns.size(); ++i) {
    registry.set(seams[i % 3], "once,errno=ECONNRESET");
    const auto reply = client.synth(engine::stp, fns[i]);
    // Busy (degraded routing while ejections settle) is an answer;
    // success must be *correct* — never another request's chain.
    if (reply.ok && reply.outcome == stpes::synth::status::success) {
      ASSERT_FALSE(reply.chains.empty());
      EXPECT_EQ(reply.chains.front().simulate(), fns[i]);
    }
  }
  registry.clear_all();
  EXPECT_GT(client.metrics().retries + client.metrics().reconnects +
                r.counters().client_retries +
                r.counters().client_reconnects +
                r.counters().backend_failures,
            0u)
      << "twelve injections fired yet nothing ever retried";

  // Dropped accepts: the connection stays in the backlog and is accepted
  // on the next loop pass, so fresh connections only see added latency.
  registry.set("tcp_server.accept", "every=2,errno=ECONNRESET");
  for (int i = 0; i < 4; ++i) {
    resilient_client fresh{ep, policy};
    EXPECT_TRUE(fresh.ping());
  }
  registry.clear_all();

  // Clear skies: the fleet must heal completely and answer everything.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(r.options().probation_ms + 50));
  for (const auto& f : fns) {
    const auto reply = client.synth(engine::stp, f);
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.outcome, stpes::synth::status::success);
    ASSERT_FALSE(reply.chains.empty());
    EXPECT_EQ(reply.chains.front().simulate(), f);
  }

  front.stop();
  front_thread.join();
}

}  // namespace
