#include "synth/factorize.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using stpes::synth::factor_requirement;
using stpes::synth::factorization;
using stpes::synth::is_factorable;
using stpes::synth::op_family;
using stpes::synth::requirement;
using stpes::tt::isf;
using stpes::tt::truth_table;

requirement full_requirement(const truth_table& f) {
  return requirement{f.support_mask() == 0
                         ? (1u << f.num_vars()) - 1
                         : f.support_mask(),
                     isf::from_function(f)};
}

/// Checks that one factorization, completed arbitrarily inside its cones,
/// recombines to a function accepted by the requirement.
void expect_sound(const requirement& r, const factorization& f) {
  const auto u = f.left.func.completion_in_cone(f.left.cone);
  const auto v = f.right.func.completion_in_cone(f.right.cone);
  truth_table combined = f.family == op_family::and_like ? (u & v) : (u ^ v);
  if (f.output_complemented) {
    combined = ~combined;
  }
  EXPECT_TRUE(r.func.accepts(combined))
      << "u=" << u.to_hex() << " v=" << v.to_hex();
}

TEST(Factorize, AndOfTwoVariables) {
  const auto f = truth_table::nth_var(2, 0) & truth_table::nth_var(2, 1);
  const auto r = full_requirement(f);
  const auto results = factor_requirement(r, 0b01, 0b10);
  ASSERT_FALSE(results.empty());
  bool found_plain_and = false;
  for (const auto& fact : results) {
    expect_sound(r, fact);
    if (fact.family == op_family::and_like && !fact.output_complemented) {
      found_plain_and = true;
    }
  }
  EXPECT_TRUE(found_plain_and);
}

TEST(Factorize, XorOfTwoVariables) {
  const auto f = truth_table::nth_var(2, 0) ^ truth_table::nth_var(2, 1);
  const auto r = full_requirement(f);
  const auto results = factor_requirement(r, 0b01, 0b10);
  ASSERT_FALSE(results.empty());
  bool found_xor = false;
  for (const auto& fact : results) {
    expect_sound(r, fact);
    found_xor |= fact.family == op_family::xor_like;
  }
  EXPECT_TRUE(found_xor);
  // An AND-like split of pure XOR over disjoint single-variable cones is
  // impossible.
  for (const auto& fact : results) {
    EXPECT_NE(fact.family, op_family::and_like);
  }
}

TEST(Factorize, PaperExample7TopSplit) {
  // f = 0x8ff8 = (ab) | (c^d): at the root with cones {a,b} vs {c,d} an
  // OR-decomposition exists — in normalized form, NAND of the two
  // complemented halves (AND-like with output complement).
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto r = full_requirement(f);
  const auto results = factor_requirement(r, 0b0011, 0b1100);
  ASSERT_FALSE(results.empty());
  bool found_or_style = false;
  for (const auto& fact : results) {
    expect_sound(r, fact);
    if (fact.family == op_family::and_like && fact.output_complemented) {
      found_or_style = true;
    }
  }
  EXPECT_TRUE(found_or_style);
}

TEST(Factorize, PrimeFunctionRejectsDisjointSplits) {
  // MAJ3 has no disjoint 2-block decomposition (Example 5.2's "three
  // unique quartering parts" situation).
  const auto maj = truth_table::from_hex(3, "0xe8");
  const auto r = full_requirement(maj);
  EXPECT_FALSE(is_factorable(r, 0b001, 0b110));
  EXPECT_FALSE(is_factorable(r, 0b010, 0b101));
  EXPECT_FALSE(is_factorable(r, 0b100, 0b011));
}

TEST(Factorize, PrimeFunctionAcceptsSharedSplit) {
  // With shared variables (the paper's M_r case) MAJ3 does factor, e.g.
  // maj = (a | b) & ((a & b) | c) with A = {a,b}, B = {a,b,c}.
  const auto maj = truth_table::from_hex(3, "0xe8");
  const auto r = full_requirement(maj);
  bool any = false;
  for (std::uint32_t a = 1; a < 7 && !any; ++a) {
    for (std::uint32_t b = 1; b < 8 && !any; ++b) {
      if ((a | b) != 7) {
        continue;  // children must cover all variables
      }
      any = is_factorable(r, a, b);
    }
  }
  EXPECT_TRUE(any);
}

TEST(Factorize, SharedSplitsCarryDontCares) {
  const auto maj = truth_table::from_hex(3, "0xe8");
  const auto r = full_requirement(maj);
  bool saw_dont_care = false;
  for (std::uint32_t a = 1; a < 8; ++a) {
    for (std::uint32_t b = 1; b < 8; ++b) {
      if ((a | b) != 7) {
        continue;
      }
      for (const auto& fact : factor_requirement(r, a, b)) {
        expect_sound(r, fact);
        saw_dont_care |= !fact.left.func.is_fully_specified() ||
                         !fact.right.func.is_fully_specified();
      }
    }
  }
  // The paper's 'x' entries: factoring through M_r leaves unconstrained
  // cells.
  EXPECT_TRUE(saw_dont_care);
}

TEST(Factorize, ChildrenAreClassedOnTheirCones) {
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto r = full_requirement(f);
  for (const auto& fact : factor_requirement(r, 0b0011, 0b1100)) {
    // Projection onto the cone must be lossless (already classed).
    const auto left = fact.left.func.project_to_cone(fact.left.cone);
    const auto right = fact.right.func.project_to_cone(fact.right.cone);
    ASSERT_TRUE(left.has_value());
    ASSERT_TRUE(right.has_value());
    EXPECT_TRUE(*left == fact.left.func);
    EXPECT_TRUE(*right == fact.right.func);
  }
}

TEST(Factorize, UnconstrainedRequirementIsTriviallyFactorable) {
  requirement r{0b11, isf{2}};
  const auto results = factor_requirement(r, 0b01, 0b10);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].left.func.is_unconstrained());
}

TEST(Factorize, BranchCapIsHonoured) {
  stpes::synth::factorize_options options;
  options.max_branches_per_family = 2;
  options.max_xor_components = 1;
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto r = full_requirement(f);
  const auto results = factor_requirement(r, 0b0011, 0b1100, options);
  // 2 families x 2 polarities x <= 2 branches.
  EXPECT_LE(results.size(), 8u);
}

TEST(Factorize, RandomFunctionsSoundness) {
  stpes::util::rng rng{99};
  for (int iteration = 0; iteration < 40; ++iteration) {
    const unsigned n = 3 + static_cast<unsigned>(rng.next_below(2));
    truth_table f{n};
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      f.set_bit(t, rng.next_bool());
    }
    if (f.support_mask() != (1u << n) - 1) {
      continue;
    }
    const auto r = full_requirement(f);
    const std::uint32_t all = (1u << n) - 1;
    for (std::uint32_t a = 1; a < all; ++a) {
      const std::uint32_t b = all & ~a;
      for (const auto& fact : factor_requirement(r, a, b)) {
        expect_sound(r, fact);
      }
    }
  }
}

TEST(Factorize, BatchMatchesSingleSplitCalls) {
  // The batched entry point must return, per split, exactly what the
  // one-split API returns — the vectorized screen and the shared
  // per-batch precomputation are pure speedups.
  stpes::util::rng rng{1234};
  for (int iteration = 0; iteration < 20; ++iteration) {
    const unsigned n = 3 + static_cast<unsigned>(rng.next_below(3));
    truth_table f{n};
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      f.set_bit(t, rng.next_bool());
    }
    if (f.support_mask() != (1u << n) - 1) {
      continue;
    }
    const auto r = full_requirement(f);
    const std::uint32_t all = (1u << n) - 1;
    std::vector<stpes::synth::cone_split> splits;
    for (std::uint32_t a = 1; a < all; ++a) {
      splits.push_back({a, all & ~a});       // exact bipartitions
      splits.push_back({a | 1u, all & ~a});  // and some sharing variable 0
    }
    const auto batched = stpes::synth::factor_requirement_batch(r, splits);
    ASSERT_EQ(batched.size(), splits.size());
    for (std::size_t i = 0; i < splits.size(); ++i) {
      const auto single = factor_requirement(r, splits[i].a, splits[i].b);
      ASSERT_EQ(batched[i].size(), single.size()) << "split " << i;
      for (std::size_t j = 0; j < single.size(); ++j) {
        const auto& x = batched[i][j];
        const auto& y = single[j];
        EXPECT_EQ(x.family, y.family) << "split " << i << " branch " << j;
        EXPECT_EQ(x.output_complemented, y.output_complemented)
            << "split " << i << " branch " << j;
        EXPECT_EQ(x.left.cone, y.left.cone);
        EXPECT_EQ(x.right.cone, y.right.cone);
        EXPECT_TRUE(x.left.func == y.left.func)
            << "split " << i << " branch " << j;
        EXPECT_TRUE(x.right.func == y.right.func)
            << "split " << i << " branch " << j;
      }
    }
  }
}

TEST(Factorize, BatchCountsScreenEffort) {
  // On a run without a deadline every screened query either dies in the
  // screen or survives into the solver: screened + survivors == queries.
  stpes::core::run_context ctx;
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto r = full_requirement(f);
  const std::uint32_t all = 0xF;
  std::vector<stpes::synth::cone_split> splits;
  for (std::uint32_t a = 1; a < all; ++a) {
    splits.push_back({a, all & ~a});
  }
  const auto lists =
      stpes::synth::factor_requirement_batch(r, splits, {}, &ctx);
  ASSERT_EQ(lists.size(), splits.size());
  const auto& c = ctx.counters;
  EXPECT_EQ(c.factorization_attempts, splits.size());
  EXPECT_GT(c.kernel_batch_queries, 0u);
  EXPECT_EQ(c.kernel_batch_screened + c.kernel_batch_survivors,
            c.kernel_batch_queries);
}

TEST(Factorize, DeduplicatesBranches) {
  const auto f = truth_table::nth_var(2, 0) & truth_table::nth_var(2, 1);
  const auto r = full_requirement(f);
  const auto results = factor_requirement(r, 0b01, 0b10);
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t j = i + 1; j < results.size(); ++j) {
      const bool same = results[i].family == results[j].family &&
                        results[i].output_complemented ==
                            results[j].output_complemented &&
                        results[i].left.func == results[j].left.func &&
                        results[i].right.func == results[j].right.func;
      EXPECT_FALSE(same) << "duplicate at " << i << "," << j;
    }
  }
}

}  // namespace
