/// \file server_test.cpp
/// \brief Daemon failure modes and protocol behaviour, all in pipe mode.
///
/// Every test drives `synthesis_server` sessions over in-process streams —
/// scripted stringstream transcripts for the sequential cases, real POSIX
/// pipes (the daemon's `--pipe` transport) for the concurrent ones — so CI
/// never touches a socket.  Covered failure modes: malformed command
/// lines, oversized truth-table payloads, client disconnect mid-request,
/// concurrent clients on one NPN class (single-flight observed via STATS),
/// timeout expiry, and graceful drain with a request in flight.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.hpp"
#include "server/fd_stream.hpp"
#include "server/resilient_client.hpp"
#include "server/server.hpp"
#include "server/socket_server.hpp"
#include "service/chain_io.hpp"
#include "util/failpoint.hpp"
#include "workload/collections.hpp"

namespace {

using stpes::core::engine;
using stpes::server::line_client;
using stpes::server::server_options;
using stpes::server::synthesis_server;
using stpes::tt::truth_table;

/// Runs one scripted session and returns the full reply transcript.
std::string run_session(synthesis_server& server, const std::string& input) {
  std::istringstream in{input};
  std::ostringstream out;
  server.serve(in, out);
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  return lines;
}

server_options quick_options() {
  server_options opts;
  opts.default_timeout_seconds = 60.0;
  opts.num_threads = 2;
  return opts;
}

/// A live session over two POSIX pipes: the server runs on its own thread
/// (exactly the daemon's pipe transport), the test drives a `line_client`.
class pipe_session {
public:
  explicit pipe_session(synthesis_server& server) {
    EXPECT_EQ(::pipe(to_server_), 0);
    EXPECT_EQ(::pipe(from_server_), 0);
    server_in_ = std::make_unique<stpes::server::fd_iostream>(to_server_[0]);
    server_out_ =
        std::make_unique<stpes::server::fd_iostream>(from_server_[1]);
    client_in_ =
        std::make_unique<stpes::server::fd_iostream>(from_server_[0]);
    client_out_ =
        std::make_unique<stpes::server::fd_iostream>(to_server_[1]);
    thread_ = std::thread([&server, this] {
      server.serve(*server_in_, *server_out_);
      // Close the write end so a client blocked in a read sees EOF even
      // when the session ended first (e.g. a drain racing a request).
      server_out_->flush();
      ::close(from_server_[1]);
      server_write_closed_ = true;
    });
    client_ = std::make_unique<line_client>(*client_in_, *client_out_);
  }

  ~pipe_session() {
    finish();
    ::close(to_server_[0]);
    ::close(from_server_[0]);
    if (!server_write_closed_) {
      ::close(from_server_[1]);
    }
  }

  [[nodiscard]] line_client& client() { return *client_; }

  /// Closes the client's write end (EOF for the server) and joins.
  void finish() {
    if (thread_.joinable()) {
      client_out_->flush();
      ::close(to_server_[1]);
      thread_.join();
    }
  }

private:
  int to_server_[2] = {-1, -1};
  int from_server_[2] = {-1, -1};
  std::unique_ptr<stpes::server::fd_iostream> server_in_;
  std::unique_ptr<stpes::server::fd_iostream> server_out_;
  std::unique_ptr<stpes::server::fd_iostream> client_in_;
  std::unique_ptr<stpes::server::fd_iostream> client_out_;
  std::unique_ptr<line_client> client_;
  std::thread thread_;
  bool server_write_closed_ = false;  ///< written before join, read after
};

/// A scratch file removed on scope exit.
class temp_file {
public:
  explicit temp_file(const std::string& name)
      : path_(::testing::TempDir() + name) {}
  ~temp_file() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

private:
  std::string path_;
};

TEST(Server, PingAndUnknownCommandsKeepTheSessionAlive) {
  synthesis_server server{quick_options()};
  const auto out = run_session(server, "PING\nBOGUS 1 2 3\n\n  \nPING\n");
  EXPECT_EQ(out, "OK pong\nERR unknown command 'BOGUS'\nOK pong\n");
  EXPECT_EQ(server.counters().parse_errors, 1u);
}

TEST(Server, SynthRoundTripReturnsVerifiableChains) {
  synthesis_server server{quick_options()};
  const auto lines = split_lines(run_session(server, "SYNTH stp 2 8\n"));
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("OK success 1 ", 0), 0u) << lines[0];
  // Every returned chain line must parse and realize x0 & x1.
  const auto and2 = truth_table{2, 0x8};
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(stpes::service::parse_chain(lines[i]).simulate(), and2);
  }
}

TEST(Server, MalformedLinesPoisonOnlyTheirRequest) {
  synthesis_server server{quick_options()};
  const auto out = run_session(server,
                               "SYNTH nope 2 8\n"
                               "SYNTH stp two 8\n"
                               "SYNTH stp 2 88\n"
                               "SYNTH stp 2 g\n"
                               "SYNTH stp 2 8 -1\n"
                               "SYNTH stp 2\n"
                               "SAVE\n"
                               "STATS BOGUS\n"
                               "SYNTH stp 2 8\n");
  const auto lines = split_lines(out);
  ASSERT_GE(lines.size(), 9u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(lines[i].rfind("ERR ", 0), 0u) << lines[i];
  }
  // The ninth request still synthesizes.
  EXPECT_EQ(lines[8].rfind("OK success 1 ", 0), 0u) << lines[8];
  EXPECT_EQ(server.counters().parse_errors, 8u);
}

TEST(Server, MultiOutputSynthReturnsOneSharedChainSet) {
  synthesis_server server{quick_options()};
  // The 2-output full adder over a comma-separated hex list: sum, carry.
  const auto lines =
      split_lines(run_session(server, "SYNTH stp 3 96,e8\n"));
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("OK success 5 ", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find(" outputs=2 "), std::string::npos) << lines[0];
  const auto sum = truth_table::from_hex(3, "96");
  const auto carry = truth_table::from_hex(3, "e8");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].rfind("mchain 3 5 2 ", 0), 0u) << lines[i];
    const auto c = stpes::service::parse_chain(lines[i]);
    ASSERT_EQ(c.num_outputs(), 2u);
    EXPECT_EQ(c.simulate_output(0), sum);
    EXPECT_EQ(c.simulate_output(1), carry);
  }
  // Single-output replies carry no outputs= tag: byte compatibility with
  // the previous protocol generation.
  const auto single = split_lines(run_session(server, "SYNTH stp 2 8\n"));
  ASSERT_GE(single.size(), 1u);
  EXPECT_EQ(single[0].find("outputs="), std::string::npos) << single[0];
}

TEST(Server, MalformedOutputListsAreRejected) {
  synthesis_server server{quick_options()};
  const auto out = run_session(server,
                               "SYNTH stp 2 8,\n"
                               "SYNTH stp 2 ,8\n"
                               "SYNTH stp 2 8,fff\n"
                               "SYNTH stp 2 8,6,9,8,6,9,8,6,9\n"
                               "SYNTH stp 3 96,e8\n");
  const auto lines = split_lines(out);
  ASSERT_GE(lines.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(lines[i].rfind("ERR ", 0), 0u) << lines[i];
  }
  EXPECT_NE(lines[3].find("too many outputs"), std::string::npos)
      << lines[3];
  // The well-formed list after the garbage still synthesizes.
  EXPECT_EQ(lines[4].rfind("OK success 5 ", 0), 0u) << lines[4];
  EXPECT_EQ(server.counters().parse_errors, 4u);
}

TEST(Server, BatchRowsAcceptMultiOutputLists) {
  synthesis_server server{quick_options()};
  const auto out = run_session(server,
                               "BATCH\n"
                               "stp 3 96,e8\n"
                               "stp 2 8\n"
                               "END\n");
  const auto lines = split_lines(out);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("OK 2 id=", 0), 0u) << lines[0];
  // The multi row's RESULT head is tagged; its chains are mchain lines.
  EXPECT_EQ(lines[1].rfind("RESULT 0 success 5 ", 0), 0u) << lines[1];
  EXPECT_NE(lines[1].find(" outputs=2"), std::string::npos) << lines[1];
  std::size_t result1_at = 0;
  for (std::size_t i = 2; i < lines.size(); ++i) {
    if (lines[i].rfind("RESULT 1 ", 0) == 0) {
      result1_at = i;
    }
  }
  ASSERT_GT(result1_at, 2u);
  const auto sum = truth_table::from_hex(3, "96");
  const auto carry = truth_table::from_hex(3, "e8");
  for (std::size_t i = 2; i < result1_at; ++i) {
    const auto c = stpes::service::parse_chain(lines[i]);
    ASSERT_EQ(c.num_outputs(), 2u);
    EXPECT_EQ(c.simulate_output(0), sum);
    EXPECT_EQ(c.simulate_output(1), carry);
  }
  // The single-output row stays untagged.
  EXPECT_EQ(lines[result1_at].find("outputs="), std::string::npos)
      << lines[result1_at];
}

TEST(Server, OversizedPayloadsAreRejectedUpFront) {
  synthesis_server server{quick_options()};
  // Arity over the wire limit: rejected before any synthesis work.
  const std::string big_tt(1024, 'f');
  const auto out =
      run_session(server, "SYNTH stp 12 " + big_tt + "\nPING\n");
  const auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ERR truth table too large", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1], "OK pong");

  // A line beyond max_line_bytes is refused without parsing — and without
  // buffering: the bounded reader drops the excess as it streams in.
  const std::string huge(8192, 'a');
  const auto out2 = run_session(server, huge + "\nPING\n");
  const auto lines2 = split_lines(out2);
  ASSERT_EQ(lines2.size(), 2u);
  EXPECT_EQ(lines2[0].rfind("ERR line-too-long", 0), 0u) << lines2[0];
  EXPECT_EQ(lines2[1], "OK pong");
  EXPECT_EQ(server.synthesizer().current_metrics().requests, 0u);

  // Same for a multi-megabyte line: the reply must not echo its size back
  // (the old implementation buffered the whole line before rejecting).
  const std::string monster(4u << 20, 'b');
  const auto out3 = run_session(server, monster + "\nPING\n");
  const auto lines3 = split_lines(out3);
  ASSERT_EQ(lines3.size(), 2u);
  EXPECT_EQ(lines3[0].rfind("ERR line-too-long", 0), 0u) << lines3[0];
  EXPECT_EQ(lines3[1], "OK pong");
}

TEST(Server, BatchBlockAnswersEveryRequestInOrder) {
  synthesis_server server{quick_options()};
  const auto out = run_session(server,
                               "BATCH\n"
                               "stp 2 8\n"
                               "stp 2 6\n"
                               "stp 2 8\n"
                               "END\n");
  const auto lines = split_lines(out);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("OK 3 id=", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("RESULT 0 success 1 ", 0), 0u) << lines[1];
  // Duplicate requests (indices 0 and 2) get identical result blocks.
  std::size_t result2_pos = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].rfind("RESULT 2 ", 0) == 0) {
      result2_pos = i;
    }
  }
  ASSERT_GT(result2_pos, 0u);
  EXPECT_EQ(lines[1].substr(9), lines[result2_pos].substr(9));
}

TEST(Server, BatchParseErrorPoisonsOnlyTheBlock) {
  synthesis_server server{quick_options()};
  const auto out = run_session(server,
                               "BATCH\n"
                               "stp 2 8\n"
                               "stp 99 8\n"
                               "END\n"
                               "PING\n");
  const auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ERR batch line 2: ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1], "OK pong");
  // Nothing was synthesized for the poisoned block.
  EXPECT_EQ(server.synthesizer().current_metrics().requests, 0u);
}

TEST(Server, ClientDisconnectMidBatchIsSilentAndClean) {
  synthesis_server server{quick_options()};
  // EOF arrives between a BATCH header and its END: no reply is owed, the
  // daemon survives, and a fresh session works.
  const auto out = run_session(server, "BATCH\nstp 2 8\n");
  EXPECT_EQ(out, "");
  EXPECT_EQ(server.synthesizer().current_metrics().requests, 0u);
  EXPECT_EQ(run_session(server, "PING\n"), "OK pong\n");
}

TEST(Server, TimeoutExpiryYieldsErrTimeout) {
  synthesis_server server{quick_options()};
  // A nanosecond budget on a non-degenerate function expires at the first
  // engine poll.
  const auto out = run_session(server, "SYNTH stp 4 0x8ff8 0.000000001\n");
  EXPECT_EQ(out, "ERR timeout\n");
  EXPECT_EQ(server.counters().timeouts, 1u);
}

TEST(Server, PerRequestTimeoutIsClampedToTheServerCap) {
  auto opts = quick_options();
  opts.max_timeout_seconds = 1e-9;
  synthesis_server server{opts};
  // The client asks for an unlimited budget; the cap turns it into an
  // immediate timeout instead of an unbounded synthesis.
  const auto out = run_session(server, "SYNTH stp 4 0x8ff8 0\n");
  EXPECT_EQ(out, "ERR timeout\n");
}

TEST(Server, ConcurrentClientsOnOneClassShareSingleFlight) {
  synthesis_server server{quick_options()};
  pipe_session a{server};
  pipe_session b{server};

  const auto f = truth_table::from_hex(4, "0x8ff8");
  line_client::synth_reply reply_a;
  line_client::synth_reply reply_b;
  std::string raw_a;
  std::string raw_b;
  std::thread ta{[&] {
    reply_a = a.client().synth(engine::stp, f);
    raw_a = a.client().last_raw();
  }};
  std::thread tb{[&] {
    reply_b = b.client().synth(engine::stp, f);
    raw_b = b.client().last_raw();
  }};
  ta.join();
  tb.join();

  ASSERT_TRUE(reply_a.ok);
  ASSERT_TRUE(reply_b.ok);
  // Byte-identical replies modulo the per-request id tag: same cached
  // canonical result, same rewrite.
  const auto strip_id = [](std::string raw) {
    const auto pos = raw.find(" id=");
    if (pos != std::string::npos) {
      raw.erase(pos, raw.find('\n', pos) - pos);
    }
    return raw;
  };
  EXPECT_EQ(strip_id(raw_a), strip_id(raw_b));
  EXPECT_FALSE(raw_a.empty());
  EXPECT_NE(reply_a.request_id, 0u);
  EXPECT_NE(reply_b.request_id, 0u);
  EXPECT_NE(reply_a.request_id, reply_b.request_id);

  // Exactly one synthesis ran; the second client was served from the
  // ready entry or waited on the in-flight one.
  const auto cache = server.synthesizer().cache_stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_GE(cache.hits + cache.inflight_waits, 1u);
  const auto stats = a.client().stats_json();
  EXPECT_NE(stats.find("\"misses\":1"), std::string::npos) << stats;

  a.client().quit();
  b.client().quit();
  a.finish();
  b.finish();
}

TEST(Server, SaveLoadRoundTripCarriesEngineMetadata) {
  temp_file file{"server_cache_meta.txt"};
  {
    synthesis_server server{quick_options()};
    const auto out = run_session(
        server, "SYNTH stp 4 0x8ff8\nSAVE " + file.path() + "\n");
    EXPECT_NE(out.find("OK saved 1"), std::string::npos) << out;
  }
  // The persisted file records the engine per entry.
  {
    std::ifstream is{file.path()};
    std::string content{std::istreambuf_iterator<char>{is},
                        std::istreambuf_iterator<char>{}};
    EXPECT_NE(content.find("meta engine=stp"), std::string::npos)
        << content;
  }
  // Same-engine daemon: the entry is trusted and serves hits.
  {
    synthesis_server server{quick_options()};
    const auto out = run_session(
        server, "LOAD " + file.path() + "\nSYNTH stp 4 0x8ff8\n");
    EXPECT_NE(out.find("OK loaded 1 skipped 0"), std::string::npos) << out;
    EXPECT_EQ(server.synthesizer().current_metrics().cache_misses, 0u);
    EXPECT_EQ(server.synthesizer().current_metrics().cache_hits, 1u);
  }
  // Different-engine daemon: the entry is skipped, not served blindly.
  {
    auto opts = quick_options();
    opts.default_engine = engine::bms;
    synthesis_server server{opts};
    const auto out = run_session(server, "LOAD " + file.path() + "\n");
    EXPECT_NE(out.find("OK loaded 0 skipped 1"), std::string::npos) << out;
  }
}

TEST(Server, LoadSkipsFailuresRecordedUnderSmallerBudgets) {
  temp_file file{"server_cache_budget.txt"};
  {
    // Hand-craft a cache file: one timeout entry recorded under a 1 ms
    // budget, one success entry.  Only the success survives warming into
    // a daemon with a larger budget.
    stpes::service::cache_entry timed_out;
    timed_out.function = truth_table::from_hex(4, "0x8ff8");
    timed_out.result.outcome = stpes::synth::status::timeout;
    timed_out.meta = stpes::service::entry_meta{"stp", 0.001};

    stpes::service::cache_entry success;
    stpes::chain::boolean_chain c{2};
    c.set_output(c.add_step(0x8, 0, 1));
    success.function = c.simulate();
    success.result.outcome = stpes::synth::status::success;
    success.result.optimum_gates = 1;
    success.result.chains = {c};
    success.meta = stpes::service::entry_meta{"stp", 0.001};

    stpes::service::save_cache_file(file.path(), {timed_out, success});
  }
  synthesis_server server{quick_options()};  // 60 s default budget
  const auto out = run_session(server, "LOAD " + file.path() + "\n");
  EXPECT_NE(out.find("OK loaded 1 skipped 1"), std::string::npos) << out;
}

TEST(Server, CorruptCacheFileYieldsErrNotCrash) {
  temp_file file{"server_cache_corrupt.txt"};
  {
    std::ofstream os{file.path()};
    os << "stpes-chains v999\n";
  }
  synthesis_server server{quick_options()};
  const auto out = run_session(server, "LOAD " + file.path() + "\nPING\n");
  const auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("ERR ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1], "OK pong");
}

TEST(Server, StatsComeInTextAndJson) {
  synthesis_server server{quick_options()};
  pipe_session s{server};
  ASSERT_TRUE(s.client().ping());
  const auto text = s.client().stats_text();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text[0].rfind("sessions", 0), 0u) << text[0];
  const auto json = s.client().stats_json();
  EXPECT_NE(json.find("\"server\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"synthesis\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache\":{"), std::string::npos) << json;
  s.client().quit();
}

TEST(Server, CancelStopsAnInFlightBatch) {
  synthesis_server server{quick_options()};  // 60 s per-request budget
  pipe_session worker{server};
  pipe_session controller{server};

  // Hard 6-input functions (cache-bypass path, one engine run each) under
  // a 60 s budget: without CANCEL this batch would hold the session for
  // minutes.  The controller connection cancels from the outside — the
  // protocol is synchronous per session, so CANCEL can never be issued on
  // the worker's own connection.
  const auto functions = stpes::workload::pdsd_functions(6, 3, 7);
  std::vector<std::pair<engine, truth_table>> requests;
  requests.reserve(functions.size());
  for (const auto& f : functions) {
    requests.emplace_back(engine::stp, f);
  }

  std::vector<line_client::synth_reply> replies;
  std::atomic<bool> batch_done{false};
  std::thread runner{[&] {
    replies = worker.client().batch(requests);
    batch_done.store(true, std::memory_order_release);
  }};

  // Keep cancelling until the batch returns: each CANCEL flips every
  // in-flight flag and invalidates the queue, so the loop is guaranteed
  // to terminate regardless of how the submissions interleave with it.
  while (!batch_done.load(std::memory_order_acquire)) {
    controller.client().cancel();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  runner.join();

  ASSERT_EQ(replies.size(), requests.size());
  for (const auto& r : replies) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.outcome == stpes::synth::status::timeout ||
                r.outcome == stpes::synth::status::success);
  }
  // At least one job was actually interrupted (PDSD6 cannot finish in the
  // few milliseconds before the first CANCEL lands).
  EXPECT_GE(server.synthesizer().current_metrics().cancelled, 1u);
  EXPECT_GE(server.counters().cancels, 1u);

  worker.client().quit();
  controller.client().quit();
  worker.finish();
  controller.finish();
}

TEST(Server, OverloadShedsWithBusyRetryAfter) {
  auto opts = quick_options();
  opts.num_threads = 1;
  opts.max_pending_jobs = 1;
  opts.overload_retry_ms = 250;
  synthesis_server server{opts};
  pipe_session worker{server};
  pipe_session extra{server};
  pipe_session controller{server};

  // One hard 6-input function saturates the single worker thread.
  const auto hard = stpes::workload::pdsd_functions(6, 3, 1).front();
  line_client::synth_reply worker_reply;
  std::thread runner{[&] {
    worker_reply = worker.client().synth(engine::stp, hard);
  }};
  while (server.synthesizer().pending_jobs() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The admission queue (bound 1) is full: the next request is shed with
  // the configured retry hint instead of queueing behind the long job.
  const auto shed = extra.client().synth(
      engine::stp, truth_table::from_hex(2, "8"));
  EXPECT_TRUE(shed.busy);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.retry_after_ms, 250u);
  EXPECT_GE(server.counters().busy, 1u);

  while (server.synthesizer().pending_jobs() > 0) {
    controller.client().cancel();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  runner.join();

  // Once the queue drains, the same session is served normally again.
  const auto ok = extra.client().synth(
      engine::stp, truth_table::from_hex(2, "8"));
  EXPECT_TRUE(ok.ok) << ok.error;

  worker.client().quit();
  extra.client().quit();
  controller.client().quit();
  worker.finish();
  extra.finish();
  controller.finish();
}

TEST(Server, SessionQuotaRejectsPastTheLimit) {
  auto opts = quick_options();
  opts.max_session_requests = 2;
  synthesis_server server{opts};
  const auto out = run_session(server,
                               "SYNTH stp 2 8\n"
                               "SYNTH stp 2 6\n"
                               "SYNTH stp 2 8\n"
                               "PING\n");
  const auto lines = split_lines(out);
  std::size_t err_at = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("ERR quota-exceeded", 0) == 0) {
      err_at = i;
    }
  }
  ASSERT_GT(err_at, 0u) << out;
  // Non-synthesis verbs are not metered and the session stays open.
  EXPECT_EQ(lines.back(), "OK pong");
  EXPECT_EQ(server.counters().quota_rejections, 1u);
  EXPECT_EQ(server.synthesizer().current_metrics().requests, 2u);

  // A BATCH block is charged by body size: 3 requests overrun a fresh
  // session's quota of 2 up front, before any synthesis runs.
  const auto out2 = run_session(server,
                                "BATCH\nstp 2 8\nstp 2 6\nstp 2 9\nEND\n");
  EXPECT_EQ(split_lines(out2).front().rfind("ERR quota-exceeded", 0), 0u)
      << out2;
  EXPECT_EQ(server.synthesizer().current_metrics().requests, 2u);
}

TEST(Server, ReloadSwapsTheCacheInPlace) {
  temp_file file{"server_reload.txt"};
  synthesis_server server{quick_options()};

  // Synthesize two classes, persist them, then synthesize a third class
  // (3-var: every nontrivial 2-var function is NPN-equivalent to AND or
  // XOR, both already resident).
  auto out = run_session(
      server, "SYNTH stp 2 8\nSYNTH stp 2 6\nSAVE " + file.path() + "\n");
  EXPECT_NE(out.find("OK saved 2"), std::string::npos) << out;
  run_session(server, "SYNTH stp 3 80\n");
  EXPECT_EQ(server.synthesizer().cache_stats().size, 3u);

  // RELOAD drops the resident three and warms the saved two.
  out = run_session(server, "RELOAD " + file.path() + "\n");
  EXPECT_NE(out.find("OK reloaded 2 skipped 0 cleared 3"),
            std::string::npos)
      << out;
  EXPECT_EQ(server.synthesizer().cache_stats().size, 2u);

  // An absent file reads as an empty cache file (matching LOAD), so the
  // swap still happens and leaves the cache empty.
  out = run_session(server, "RELOAD " + file.path() + ".missing\n");
  EXPECT_EQ(split_lines(out).front().rfind("OK reloaded 0 skipped 0", 0),
            0u)
      << out;
  EXPECT_EQ(server.synthesizer().cache_stats().size, 0u);
}

TEST(Server, CancelByIdStopsOnlyThatRequest) {
  auto opts = quick_options();
  opts.num_threads = 4;
  synthesis_server server{opts};
  pipe_session victim{server};
  pipe_session survivor{server};
  pipe_session controller{server};

  // Two hard 6-input functions (cache-bypass, one engine run each) on
  // separate sessions; each gets its own server-assigned request id.
  const auto hard = stpes::workload::pdsd_functions(6, 3, 2);
  line_client::synth_reply victim_reply;
  line_client::synth_reply survivor_reply;
  // Register the victim first and capture its id while it is the only
  // active request — starting both SYNTHs concurrently would race for the
  // lower id, and cancelling the wrong one silently passes the victim.
  std::thread victim_runner{[&] {
    victim_reply = victim.client().synth(engine::stp, hard[0], 60.0);
  }};
  std::vector<std::uint64_t> ids;
  while ((ids = server.synthesizer().active_request_ids()).empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto victim_id = ids.front();
  std::thread survivor_runner{[&] {
    survivor_reply = survivor.client().synth(engine::stp, hard[1], 2.0);
  }};

  // Cancel only once the survivor is in flight too, so "the other request
  // keeps running" is actually exercised (the victim's 60 s budget means
  // it cannot have finished on its own by then).
  while (server.synthesizer().active_request_ids().size() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(controller.client().cancel(victim_id), 1u);

  victim_runner.join();
  survivor_runner.join();

  // The victim came back as a timeout long before its 60 s budget; the
  // survivor ran to its own conclusion (success or its 2 s timeout).
  EXPECT_FALSE(victim_reply.ok);
  EXPECT_EQ(victim_reply.error, "timeout");
  EXPECT_TRUE(survivor_reply.ok || survivor_reply.error == "timeout");
  EXPECT_GE(server.synthesizer().current_metrics().cancelled, 1u);

  victim.client().quit();
  survivor.client().quit();
  controller.client().quit();
  victim.finish();
  survivor.finish();
  controller.finish();
}

TEST(Server, RepliesCarryTheRequestId) {
  synthesis_server server{quick_options()};
  pipe_session s{server};
  const auto r1 = s.client().synth(engine::stp,
                                   truth_table::from_hex(2, "8"));
  const auto r2 = s.client().synth(engine::stp,
                                   truth_table::from_hex(2, "6"));
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  EXPECT_NE(r1.request_id, 0u);
  EXPECT_GT(r2.request_id, r1.request_id);
  const auto batch = s.client().batch(
      {{engine::stp, truth_table::from_hex(2, "9")}});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_GT(batch[0].request_id, r2.request_id);
  s.client().quit();
}

TEST(Server, FailpointVerbDrivesTheRegistry) {
  synthesis_server server{quick_options()};
  if (!stpes::util::failpoints_compiled_in()) {
    const auto out = run_session(server, "FAILPOINT LIST\n");
    EXPECT_EQ(split_lines(out).front().rfind("ERR failpoints not", 0), 0u)
        << out;
    GTEST_SKIP() << "failpoints compiled out";
  }
  stpes::util::failpoint_registry::instance().clear_all();

  // SET arms a point; the next SAVE hits it and reports the injection.
  temp_file file{"server_failpoint.txt"};
  auto out = run_session(server,
                         "FAILPOINT SET chain_io.save.open once\n"
                         "SAVE " + file.path() + "\n"
                         "SAVE " + file.path() + "\n");
  auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("OK failpoint chain_io.save.open", 0), 0u);
  EXPECT_EQ(lines[1].rfind("ERR failpoint 'chain_io.save.open'", 0), 0u)
      << lines[1];
  EXPECT_EQ(lines[2].rfind("OK saved", 0), 0u) << lines[2];  // once = spent

  // LIST shows the armed point with its hit count, CLEAR disarms.
  out = run_session(server, "FAILPOINT LIST\nFAILPOINT CLEAR\n");
  EXPECT_NE(out.find("chain_io.save.open"), std::string::npos) << out;
  EXPECT_NE(out.find("OK failpoints cleared"), std::string::npos) << out;

  // Malformed specs are rejected without arming anything.
  out = run_session(server, "FAILPOINT SET x every=0\n");
  EXPECT_EQ(split_lines(out).front().rfind("ERR bad failpoint spec", 0), 0u)
      << out;
  stpes::util::failpoint_registry::instance().clear_all();
}

TEST(Server, UnixListenerShedsIdleSessionsWithErrAndCountsThem) {
  auto opts = quick_options();
  opts.idle_timeout_seconds = 0.2;
  synthesis_server server{opts};
  const std::string path =
      "/tmp/stpes_idle_" + std::to_string(::getpid()) + ".sock";
  stpes::server::unix_socket_server transport{server, path};
  std::thread accept_thread{[&transport] { transport.run(); }};

  stpes::server::endpoint ep;  // defaults to a unix-socket endpoint
  ep.host_or_path = path;
  const int fd = stpes::server::connect_endpoint(ep, 2000);
  {
    stpes::server::fd_iostream io{fd};
    line_client client{io, io};
    EXPECT_TRUE(client.ping());  // live traffic, then silence
    std::string line;
    ASSERT_TRUE(std::getline(io, line));
    EXPECT_EQ(line, "ERR idle-timeout");
    EXPECT_FALSE(std::getline(io, line)) << "expected EOF after the shed";
  }
  ::close(fd);
  EXPECT_EQ(server.counters().idle_timeouts, 1u);

  transport.stop();
  accept_thread.join();
}

TEST(Server, ShutdownDrainsEverySession) {
  synthesis_server server{quick_options()};
  // SHUTDOWN answers, then ends its own session: the trailing PING is
  // never processed.
  const auto out = run_session(server, "SHUTDOWN\nPING\n");
  EXPECT_EQ(out, "OK shutting-down\n");
  EXPECT_TRUE(server.shutdown_requested());
  EXPECT_TRUE(server.draining());
  // New sessions on a draining server exit immediately.
  EXPECT_EQ(run_session(server, "PING\n"), "");
}

TEST(Server, DrainFinishesTheInFlightRequest) {
  synthesis_server server{quick_options()};
  pipe_session s{server};

  // Fire a request, then drain while it is (likely) in flight.  Two legal
  // outcomes: the request was already being handled, so its reply arrives
  // complete; or the drain won the race and the session closed before
  // reading it (clean EOF, no partial reply).  Either way no bytes are
  // truncated and the session thread exits.
  std::thread drainer{[&server] { server.begin_drain(); }};
  bool got_reply = false;
  try {
    const auto reply = s.client().synth(
        engine::stp, truth_table::from_hex(4, "0x8ff8"));
    got_reply = true;
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.outcome, stpes::synth::status::success);
    EXPECT_GT(reply.chains.size(), 0u);
  } catch (const std::runtime_error&) {
    // Drain closed the session before the request was read.
    EXPECT_TRUE(s.client().last_raw().empty()) << s.client().last_raw();
  }
  drainer.join();
  s.finish();  // session thread must have exited by drain or EOF
  EXPECT_TRUE(server.draining());
  if (got_reply) {
    EXPECT_GE(server.synthesizer().current_metrics().requests, 1u);
  }
}

}  // namespace
