#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hpp"
#include "util/rng.hpp"

namespace {

using stpes::sat::clause_lits;
using stpes::sat::cnf;
using stpes::sat::lit;
using stpes::sat::neg;
using stpes::sat::pos;
using stpes::sat::solve_result;
using stpes::sat::solver;
using stpes::sat::var;

TEST(SatSolver, EmptyFormulaIsSat) {
  solver s;
  EXPECT_EQ(s.solve(), solve_result::sat);
}

TEST(SatSolver, SingleUnitClause) {
  solver s;
  const var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a)}));
  ASSERT_EQ(s.solve(), solve_result::sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  solver s;
  const var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a)}));
  EXPECT_FALSE(s.add_clause({neg(a)}));
  EXPECT_EQ(s.solve(), solve_result::unsat);
}

TEST(SatSolver, SimpleImplicationChain) {
  solver s;
  std::vector<var> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(s.new_var());
  }
  for (int i = 0; i + 1 < 10; ++i) {
    EXPECT_TRUE(s.add_clause({neg(v[static_cast<std::size_t>(i)]),
                              pos(v[static_cast<std::size_t>(i + 1)])}));
  }
  EXPECT_TRUE(s.add_clause({pos(v[0])}));
  ASSERT_EQ(s.solve(), solve_result::sat);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(s.model_value(v[static_cast<std::size_t>(i)]));
  }
}

TEST(SatSolver, TautologicalClauseIsIgnored) {
  solver s;
  const var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
  EXPECT_EQ(s.num_clauses(), 0u);
  EXPECT_EQ(s.solve(), solve_result::sat);
}

TEST(SatSolver, DuplicateLiteralsAreDeduplicated) {
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), pos(a), pos(b)}));
  EXPECT_EQ(s.solve(), solve_result::sat);
}

TEST(SatSolver, XorChainSatisfiable) {
  // x1 ^ x2 ^ ... ^ x8 = 1 encoded with standard xor clauses pairwise via
  // Tseitin variables.
  solver s;
  std::vector<var> x;
  for (int i = 0; i < 8; ++i) {
    x.push_back(s.new_var());
  }
  var acc = x[0];
  for (int i = 1; i < 8; ++i) {
    const var out = s.new_var();
    const var b = x[static_cast<std::size_t>(i)];
    // out = acc ^ b.
    EXPECT_TRUE(s.add_clause({neg(out), pos(acc), pos(b)}));
    EXPECT_TRUE(s.add_clause({neg(out), neg(acc), neg(b)}));
    EXPECT_TRUE(s.add_clause({pos(out), neg(acc), pos(b)}));
    EXPECT_TRUE(s.add_clause({pos(out), pos(acc), neg(b)}));
    acc = out;
  }
  EXPECT_TRUE(s.add_clause({pos(acc)}));
  ASSERT_EQ(s.solve(), solve_result::sat);
  bool parity = false;
  for (int i = 0; i < 8; ++i) {
    parity ^= s.model_value(x[static_cast<std::size_t>(i)]);
  }
  EXPECT_TRUE(parity);
}

/// Pigeonhole principle PHP(n+1, n): classic UNSAT family that requires
/// real conflict-driven search.
void add_pigeonhole(solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<var>> p(static_cast<std::size_t>(pigeons));
  for (auto& row : p) {
    for (int h = 0; h < holes; ++h) {
      row.push_back(s.new_var());
    }
  }
  for (int i = 0; i < pigeons; ++i) {
    clause_lits at_least_one;
    for (int h = 0; h < holes; ++h) {
      at_least_one.push_back(
          pos(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(h)]));
    }
    EXPECT_TRUE(s.add_clause(at_least_one));
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i < pigeons; ++i) {
      for (int j = i + 1; j < pigeons; ++j) {
        EXPECT_TRUE(s.add_clause(
            {neg(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(h)]),
             neg(p[static_cast<std::size_t>(j)]
                  [static_cast<std::size_t>(h)])}));
      }
    }
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    solver s;
    add_pigeonhole(s, holes);
    EXPECT_EQ(s.solve(), solve_result::unsat) << "holes " << holes;
    EXPECT_GT(s.stats().conflicts, 0u);
  }
}

TEST(SatSolver, AssumptionsSelectBranch) {
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), pos(b)}));
  ASSERT_EQ(s.solve({neg(a)}), solve_result::sat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  ASSERT_EQ(s.solve({neg(b)}), solve_result::sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(SatSolver, ConflictingAssumptionsAreUnsatButRecoverable) {
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  EXPECT_TRUE(s.add_clause({neg(a), pos(b)}));
  EXPECT_EQ(s.solve({pos(a), neg(b)}), solve_result::unsat);
  // The formula itself stays satisfiable.
  EXPECT_EQ(s.solve(), solve_result::sat);
  EXPECT_EQ(s.solve({pos(a)}), solve_result::sat);
  EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, IncrementalClauseAddition) {
  solver s;
  const var a = s.new_var();
  const var b = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), pos(b)}));
  EXPECT_EQ(s.solve(), solve_result::sat);
  EXPECT_TRUE(s.add_clause({neg(a)}));
  EXPECT_EQ(s.solve(), solve_result::sat);
  EXPECT_TRUE(s.model_value(b));
  // b is already forced at the root, so adding !b is detected as trivially
  // UNSAT during addition.
  EXPECT_FALSE(s.add_clause({neg(b)}));
  EXPECT_EQ(s.solve(), solve_result::unsat);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  solver s;
  add_pigeonhole(s, 9);  // hard enough to exceed a tiny budget
  s.set_conflict_budget(10);
  EXPECT_EQ(s.solve(), solve_result::unknown);
}

TEST(SatSolver, TimeBudgetAlreadyExpired) {
  solver s;
  add_pigeonhole(s, 8);
  s.set_time_budget(stpes::util::time_budget{1e-9});
  EXPECT_EQ(s.solve(), solve_result::unknown);
}

/// Reference brute-force check for fuzzing.
bool brute_force_sat(const cnf& formula) {
  const std::size_t n = formula.num_vars;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    bool all = true;
    for (const auto& clause : formula.clauses) {
      bool any = false;
      for (const lit p : clause) {
        const bool value =
            ((mask >> p.variable()) & 1) != 0;
        if (value != p.negated()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) {
      return true;
    }
  }
  return false;
}

bool model_satisfies(const cnf& formula, const solver& s,
                     const std::vector<var>& vars) {
  for (const auto& clause : formula.clauses) {
    bool any = false;
    for (const lit p : clause) {
      if (s.model_value(vars[static_cast<std::size_t>(p.variable())]) !=
          p.negated()) {
        any = true;
        break;
      }
    }
    if (!any) {
      return false;
    }
  }
  return true;
}

class SatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SatFuzz, AgreesWithBruteForceOnRandom3Cnf) {
  stpes::util::rng rng{static_cast<std::uint64_t>(GetParam())};
  for (int round = 0; round < 40; ++round) {
    cnf formula;
    formula.num_vars = 4 + rng.next_below(8);  // 4..11 variables
    const std::size_t num_clauses =
        static_cast<std::size_t>(formula.num_vars * (2 + rng.next_below(3)));
    for (std::size_t c = 0; c < num_clauses; ++c) {
      clause_lits clause;
      for (int k = 0; k < 3; ++k) {
        const auto v = static_cast<var>(rng.next_below(formula.num_vars));
        clause.push_back(lit{v, rng.next_bool()});
      }
      formula.clauses.push_back(std::move(clause));
    }
    solver s;
    std::vector<var> vars;
    bool loaded = true;
    for (std::size_t i = 0; i < formula.num_vars; ++i) {
      vars.push_back(s.new_var());
    }
    for (const auto& clause : formula.clauses) {
      clause_lits mapped;
      for (const lit p : clause) {
        mapped.push_back(
            lit{vars[static_cast<std::size_t>(p.variable())], p.negated()});
      }
      loaded = s.add_clause(std::move(mapped)) && loaded;
    }
    const bool expected = brute_force_sat(formula);
    if (!loaded) {
      EXPECT_FALSE(expected);
      continue;
    }
    const auto result = s.solve();
    ASSERT_NE(result, solve_result::unknown);
    EXPECT_EQ(result == solve_result::sat, expected);
    if (result == solve_result::sat) {
      EXPECT_TRUE(model_satisfies(formula, s, vars));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatFuzz, ::testing::Range(1, 9));

TEST(Dimacs, ParseAndSolveRoundTrip) {
  const std::string text =
      "c sample\n"
      "p cnf 3 3\n"
      "1 -2 0\n"
      "2 3 0\n"
      "-1 0\n";
  const auto formula = stpes::sat::parse_dimacs_string(text);
  EXPECT_EQ(formula.num_vars, 3u);
  ASSERT_EQ(formula.clauses.size(), 3u);
  solver s;
  EXPECT_TRUE(stpes::sat::load_into_solver(formula, s));
  EXPECT_EQ(s.solve(), solve_result::sat);
  // x1 false forces x2 false (clause 1) and then x3 true (clause 2).
  EXPECT_FALSE(s.model_value(0));
  EXPECT_FALSE(s.model_value(1));
  EXPECT_TRUE(s.model_value(2));
}

TEST(Dimacs, WriteThenParseIsIdentity) {
  cnf formula;
  formula.num_vars = 4;
  formula.clauses = {{pos(0), neg(2)}, {pos(1), pos(3), neg(0)}};
  std::ostringstream out;
  stpes::sat::write_dimacs(out, formula);
  const auto reparsed = stpes::sat::parse_dimacs_string(out.str());
  EXPECT_EQ(reparsed.num_vars, formula.num_vars);
  ASSERT_EQ(reparsed.clauses.size(), formula.clauses.size());
  for (std::size_t i = 0; i < formula.clauses.size(); ++i) {
    EXPECT_EQ(reparsed.clauses[i].size(), formula.clauses[i].size());
    for (std::size_t j = 0; j < formula.clauses[i].size(); ++j) {
      EXPECT_EQ(reparsed.clauses[i][j], formula.clauses[i][j]);
    }
  }
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(stpes::sat::parse_dimacs_string("p cnf x y\n"),
               std::invalid_argument);
  EXPECT_THROW(stpes::sat::parse_dimacs_string("1 2 0\n"),
               std::invalid_argument);
  EXPECT_THROW(stpes::sat::parse_dimacs_string("p cnf 2 1\n1 3 0\n"),
               std::invalid_argument);
  EXPECT_THROW(stpes::sat::parse_dimacs_string("p cnf 2 1\n1 2\n"),
               std::invalid_argument);
}

}  // namespace
