#include "allsat/lut_network.hpp"

#include <gtest/gtest.h>

#include "allsat/circuit_allsat.hpp"
#include "util/rng.hpp"

namespace {

using stpes::allsat::lut_network;
using stpes::allsat::solutions_to_function;
using stpes::allsat::solve_all;
using stpes::chain::boolean_chain;
using stpes::tt::truth_table;

/// A 2-output network: sum and carry of a half adder.
lut_network half_adder() {
  lut_network net;
  net.num_inputs = 2;
  net.steps.push_back(stpes::chain::step{0x6, {0, 1}});  // sum
  net.steps.push_back(stpes::chain::step{0x8, {0, 1}});  // carry
  net.outputs.push_back({2, false});
  net.outputs.push_back({3, false});
  return net;
}

TEST(LutNetwork, FromChainRoundTrip) {
  boolean_chain c{2};
  c.set_output(c.add_step(0x8, 0, 1), true);
  const auto net = lut_network::from_chain(c);
  EXPECT_TRUE(net.is_well_formed());
  ASSERT_EQ(net.outputs.size(), 1u);
  EXPECT_EQ(net.simulate()[0], c.simulate());
}

TEST(LutNetwork, WellFormednessChecks) {
  lut_network bad;
  bad.num_inputs = 2;
  bad.steps.push_back(stpes::chain::step{0x8, {0, 5}});  // forward ref
  bad.outputs.push_back({2, false});
  EXPECT_FALSE(bad.is_well_formed());

  lut_network no_outputs;
  no_outputs.num_inputs = 2;
  EXPECT_FALSE(no_outputs.is_well_formed());
}

TEST(LutNetwork, MultiOutputSimulation) {
  const auto outs = half_adder().simulate();
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0], truth_table(2, 0x6));
  EXPECT_EQ(outs[1], truth_table(2, 0x8));
}

TEST(MultiOutputAllSat, HalfAdderJointTargets) {
  const auto net = half_adder();
  // sum=1 & carry=0: exactly the two one-hot inputs.
  auto r = solve_all(net, {true, false});
  EXPECT_TRUE(r.satisfiable);
  auto covered = solutions_to_function(2, r.solutions);
  EXPECT_EQ(covered, truth_table(2, 0x6));

  // sum=1 & carry=1: impossible.
  r = solve_all(net, {true, true});
  EXPECT_FALSE(r.satisfiable);

  // sum=0 & carry=1: both inputs one.
  r = solve_all(net, {false, true});
  covered = solutions_to_function(2, r.solutions);
  EXPECT_EQ(covered, truth_table(2, 0x8));
}

TEST(MultiOutputAllSat, SharedOutputSignalConflicts) {
  lut_network net;
  net.num_inputs = 2;
  net.steps.push_back(stpes::chain::step{0x8, {0, 1}});
  net.outputs.push_back({2, false});
  net.outputs.push_back({2, true});  // the complement of the same signal
  // Requiring both outputs true pins the signal both ways: UNSAT.
  EXPECT_FALSE(solve_all(net, {true, true}).satisfiable);
  // Opposite targets are trivially consistent.
  EXPECT_TRUE(solve_all(net, {true, false}).satisfiable);
}

TEST(MultiOutputAllSat, RandomNetworksMatchSimulation) {
  stpes::util::rng rng{321};
  for (int iteration = 0; iteration < 40; ++iteration) {
    const unsigned n = 2 + static_cast<unsigned>(rng.next_below(4));
    const unsigned steps = 2 + static_cast<unsigned>(rng.next_below(4));
    lut_network net;
    net.num_inputs = n;
    for (unsigned j = 0; j < steps; ++j) {
      const auto limit = n + j;
      net.steps.push_back(stpes::chain::step{
          static_cast<unsigned>(1 + rng.next_below(14)),
          {static_cast<std::uint32_t>(rng.next_below(limit)),
           static_cast<std::uint32_t>(rng.next_below(limit))}});
    }
    // Two outputs at random signals.
    std::vector<bool> targets;
    for (int o = 0; o < 2; ++o) {
      net.outputs.push_back(
          {static_cast<std::uint32_t>(rng.next_below(n + steps)),
           rng.next_bool()});
      targets.push_back(rng.next_bool());
    }
    const auto outs = net.simulate();
    // Reference: minterms where both outputs equal their targets.
    truth_table expected = truth_table::constant(n, true);
    for (std::size_t o = 0; o < outs.size(); ++o) {
      expected &= targets[o] ? outs[o] : ~outs[o];
    }
    const auto r = solve_all(net, targets);
    EXPECT_EQ(solutions_to_function(n, r.solutions), expected);
    EXPECT_EQ(r.satisfiable, !expected.is_const0());
  }
}

}  // namespace
