// End-to-end kernel-tier bit-identity: whole synthesis runs replayed
// under the forced scalar tier and under every dispatched tier available
// on this machine must produce the same chains, the same optimum, and the
// same deterministic effort counters.  This is the contract that lets the
// dispatcher pick any tier at startup without changing results.
//
// Workloads: the NPN4 bench subset (first 40 class representatives, the
// set BENCH_table1_npn4.json tracks) and the MADD multi-output
// collection.  Runs are sequential (threads=1) and capped at 256 chains
// (16 for MADD, whose add2 level is enumeration-heavy):
// most classes complete their enumeration below the cap (the strongest
// possible comparison — full solution set, full screen totals), the few
// heavy ones stop at a deterministic search-dependent point instead of a
// wall-clock one.  Thread-count determinism is parallel_synth_test's job.

#include <gtest/gtest.h>

#include <vector>

#include "synth/spec.hpp"
#include "synth/stp_synth.hpp"
#include "tt/kernels/kernels.hpp"
#include "tt/truth_table.hpp"
#include "workload/collections.hpp"

namespace {

using stpes::core::stage_counters;
using stpes::synth::result;
using stpes::synth::spec;
using stpes::synth::status;
using stpes::synth::stp_engine;
using stpes::synth::stp_options;
using stpes::tt::truth_table;
using stpes::tt::kernels::force_tier;
using stpes::tt::kernels::kernel_tier;
using stpes::tt::kernels::tier_available;
using stpes::tt::kernels::tier_name;

std::vector<kernel_tier> dispatched_tiers() {
  std::vector<kernel_tier> tiers;
  if (tier_available(kernel_tier::avx2)) {
    tiers.push_back(kernel_tier::avx2);
  }
  if (tier_available(kernel_tier::avx512)) {
    tiers.push_back(kernel_tier::avx512);
  }
  return tiers;
}

/// Restores the previously active tier on scope exit.
class tier_guard {
public:
  explicit tier_guard(kernel_tier t) : previous_(force_tier(t)) {}
  ~tier_guard() { force_tier(previous_); }
  tier_guard(const tier_guard&) = delete;
  tier_guard& operator=(const tier_guard&) = delete;

private:
  kernel_tier previous_;
};

result run_under_tier(const spec& s, kernel_tier tier,
                      unsigned max_solutions) {
  const tier_guard guard{tier};
  stp_options options;
  options.max_solutions = max_solutions;
  options.num_threads = 1;
  stp_engine engine{options};
  return engine.run(s);
}

void expect_same_counters(const stage_counters& a, const stage_counters& b,
                          const char* tier) {
#define STPES_EXPECT_COUNTER_EQ(field) \
  EXPECT_EQ(a.field, b.field) << tier << " vs scalar: " #field
  STPES_EXPECT_COUNTER_EQ(fences_enumerated);
  STPES_EXPECT_COUNTER_EQ(dags_generated);
  STPES_EXPECT_COUNTER_EQ(dags_pruned);
  STPES_EXPECT_COUNTER_EQ(factorization_attempts);
  STPES_EXPECT_COUNTER_EQ(factorization_prunes);
  STPES_EXPECT_COUNTER_EQ(dont_care_expansions);
  STPES_EXPECT_COUNTER_EQ(factor_memo_hits);
  STPES_EXPECT_COUNTER_EQ(factor_memo_misses);
  STPES_EXPECT_COUNTER_EQ(allsat_propagations);
  STPES_EXPECT_COUNTER_EQ(allsat_merges);
  STPES_EXPECT_COUNTER_EQ(sat_decisions);
  STPES_EXPECT_COUNTER_EQ(sat_conflicts);
  STPES_EXPECT_COUNTER_EQ(sat_restarts);
  STPES_EXPECT_COUNTER_EQ(probe_calls);
  STPES_EXPECT_COUNTER_EQ(probe_unsat_levels);
  STPES_EXPECT_COUNTER_EQ(probe_sat_levels);
  STPES_EXPECT_COUNTER_EQ(kernel_batch_queries);
  STPES_EXPECT_COUNTER_EQ(kernel_batch_screened);
  STPES_EXPECT_COUNTER_EQ(kernel_batch_survivors);
#undef STPES_EXPECT_COUNTER_EQ
}

void expect_bit_identical(const spec& s, const std::string& label,
                          unsigned max_solutions = 256) {
  const result reference = run_under_tier(s, kernel_tier::scalar, max_solutions);
  ASSERT_EQ(reference.outcome, status::success) << label;
  for (const kernel_tier tier : dispatched_tiers()) {
    const result r = run_under_tier(s, tier, max_solutions);
    ASSERT_EQ(r.outcome, status::success)
        << label << " under " << tier_name(tier);
    EXPECT_EQ(r.optimum_gates, reference.optimum_gates)
        << label << " under " << tier_name(tier);
    EXPECT_EQ(r.enumeration_complete, reference.enumeration_complete)
        << label << " under " << tier_name(tier);
    ASSERT_EQ(r.chains.size(), reference.chains.size())
        << label << " under " << tier_name(tier);
    for (std::size_t i = 0; i < r.chains.size(); ++i) {
      EXPECT_TRUE(r.chains[i] == reference.chains[i])
          << label << " chain " << i << " differs under " << tier_name(tier);
    }
    expect_same_counters(reference.counters, r.counters, tier_name(tier));
  }
}

class Npn4BitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(Npn4BitIdentity, ScalarAndDispatchedTiersAgree) {
  static const std::vector<truth_table> classes =
      stpes::workload::npn4_classes();
  const auto& f = classes.at(static_cast<std::size_t>(GetParam()));
  if (f.support_size() < 2) {
    // Constants and literals never reach the engine in production — the
    // exact_synthesis facade's degenerate pre-pass answers them without
    // a search — and the raw engine has no chain to find for them.
    GTEST_SKIP() << f.to_hex() << " is degenerate";
  }
  spec s;
  s.function = f;
  // 0x016a's optimum level holds only 32 chains, so no cap above that
  // avoids exhausting it — and the exhaustion proof alone takes around a
  // minute per tier.  A cap below 32 stops at a deterministic
  // sweep-order point after ~0.3 s instead.
  const unsigned cap = f.to_hex() == "0x016a" ? 16u : 256u;
  expect_bit_identical(s, "npn4 " + f.to_hex(), cap);
}

// The first 40 NPN4 class representatives: the BENCH_table1_npn4 subset.
INSTANTIATE_TEST_SUITE_P(Npn4BenchSubset, Npn4BitIdentity,
                         ::testing::Range(0, 40));

TEST(MaddBitIdentity, ScalarAndDispatchedTiersAgree) {
  for (const auto& instance : stpes::workload::madd_collection()) {
    if (instance.name == "cmp2") {
      // cmp2's optimum level needs minutes of sweeping before the first
      // chain appears — the bench row only finishes it through the
      // wall-clock deadline plus the probe-witness fallback, and a
      // deadline cut is exactly what a bit-identity replay cannot
      // tolerate (the cut point is time- not search-dependent).  The
      // remaining four instances cover the multi-output path.
      continue;
    }
    spec s;
    s.functions = instance.functions;
    // Cap 16 instead of 256: add2's optimum level yields chains slowly
    // enough that enumerating 256 of them takes minutes, while the cap-16
    // cut lands after ~1 s at a point determined purely by the sweep
    // order — exactly as deterministic, much cheaper.
    expect_bit_identical(s, instance.name, /*max_solutions=*/16);
  }
}

}  // namespace
