#include "stp/expr.hpp"

#include <gtest/gtest.h>

#include "stp/stp_allsat.hpp"
#include "util/rng.hpp"

namespace {

using stpes::stp::equiv;
using stpes::stp::expr;
using stpes::stp::implies;
using stpes::stp::logic_matrix;
using stpes::tt::truth_table;

/// The STP canonical form must represent exactly the same function as
/// direct truth-table evaluation.
void expect_canonical_matches_eval(const expr& e, unsigned num_vars) {
  const auto direct = e.evaluate(num_vars);
  const auto canonical = e.canonical().to_logic_matrix(num_vars);
  EXPECT_EQ(canonical.to_truth_table(), direct) << e.to_string();
}

TEST(StpExpr, LeafCanonicalForms) {
  expect_canonical_matches_eval(expr::var(0), 1);
  expect_canonical_matches_eval(expr::var(0), 3);
  expect_canonical_matches_eval(expr::constant(true), 2);
  expect_canonical_matches_eval(expr::constant(false), 2);
}

TEST(StpExpr, NegationCanonicalForm) {
  expect_canonical_matches_eval(!expr::var(1), 2);
  expect_canonical_matches_eval(!!expr::var(0), 2);
}

TEST(StpExpr, SimpleBinaryForms) {
  const auto a = expr::var(0);
  const auto b = expr::var(1);
  expect_canonical_matches_eval(a & b, 2);
  expect_canonical_matches_eval(a | b, 2);
  expect_canonical_matches_eval(a ^ b, 2);
  expect_canonical_matches_eval(implies(a, b), 2);
  expect_canonical_matches_eval(equiv(a, b), 2);
}

TEST(StpExpr, Example2ImplicationEqualsNotAOrB) {
  const auto a = expr::var(1);
  const auto b = expr::var(0);
  const auto lhs = implies(a, b).canonical().to_logic_matrix(2);
  const auto rhs = ((!a) | b).canonical().to_logic_matrix(2);
  EXPECT_EQ(lhs, rhs);
}

TEST(StpExpr, VariableOrderNormalization) {
  // b & a requires one M_w swap; result must equal a & b's form.
  const auto a = expr::var(1);
  const auto b = expr::var(0);
  EXPECT_EQ((b & a).canonical().to_logic_matrix(2),
            (a & b).canonical().to_logic_matrix(2));
  expect_canonical_matches_eval(b & a, 2);
}

TEST(StpExpr, PowerReductionOnRepeatedVariable) {
  // a & a == a and a ^ a == 0 exercise M_r.
  const auto a = expr::var(0);
  const auto conj = (a & a).canonical().to_logic_matrix(1);
  EXPECT_EQ(conj.to_truth_table(), truth_table::nth_var(1, 0));
  const auto anti = (a ^ a).canonical().to_logic_matrix(1);
  EXPECT_TRUE(anti.to_truth_table().is_const0());
}

TEST(StpExpr, SharedVariablesAcrossSubtrees) {
  // (a & b) | (a & c): variable a occurs in both subtrees.
  const auto a = expr::var(0);
  const auto b = expr::var(1);
  const auto c = expr::var(2);
  expect_canonical_matches_eval((a & b) | (a & c), 3);
  expect_canonical_matches_eval((a & b) ^ (b & c) ^ (a & c), 3);  // MAJ3
}

TEST(StpExpr, Example4LiarPuzzle) {
  // Phi(a,b,c) = (a <-> !b) & (b <-> !c) & (c <-> (!a & !b)).
  // Variable ids: a = 2, b = 1, c = 0, so the STP order x1 x2 x3 matches
  // (a, b, c) and the canonical matrix can be compared to the paper.
  const auto a = expr::var(2);
  const auto b = expr::var(1);
  const auto c = expr::var(0);
  const auto phi =
      equiv(a, !b) & equiv(b, !c) & equiv(c, (!a) & (!b));
  const auto canonical = phi.canonical().to_logic_matrix(3);
  // Paper: M_Phi = [0 0 0 0 0 1 0 0 / 1 1 1 1 1 0 1 1].
  EXPECT_EQ(canonical.to_string(),
            "[0 0 0 0 0 1 0 0 /  1 1 1 1 1 0 1 1]");
  // The unique solution: a = F, b = T, c = F (b is honest).
  const auto solutions = stpes::stp::all_sat_columns(canonical);
  ASSERT_EQ(solutions.size(), 1u);
  const auto t = solutions[0];
  EXPECT_EQ((t >> 2) & 1, 0u);  // a false
  EXPECT_EQ((t >> 1) & 1, 1u);  // b true
  EXPECT_EQ(t & 1, 0u);         // c false
}

TEST(StpExpr, DeepNestingAgreesWithEvaluation) {
  stpes::util::rng rng{77};
  for (int iteration = 0; iteration < 30; ++iteration) {
    const unsigned n = 2 + static_cast<unsigned>(rng.next_below(4));
    // Random expression tree of ~7 nodes over n variables (reuse allowed).
    std::vector<expr> pool;
    for (unsigned v = 0; v < n; ++v) {
      pool.push_back(expr::var(v));
    }
    for (int step = 0; step < 6; ++step) {
      const auto& x = pool[rng.next_below(pool.size())];
      const auto& y = pool[rng.next_below(pool.size())];
      switch (rng.next_below(5)) {
        case 0:
          pool.push_back(x & y);
          break;
        case 1:
          pool.push_back(x | y);
          break;
        case 2:
          pool.push_back(x ^ y);
          break;
        case 3:
          pool.push_back(implies(x, y));
          break;
        default:
          pool.push_back(!x);
          break;
      }
    }
    expect_canonical_matches_eval(pool.back(), n);
  }
}

TEST(StpExpr, ArbitraryBinaryLut) {
  const auto a = expr::var(0);
  const auto b = expr::var(1);
  for (unsigned op = 0; op < 16; ++op) {
    const auto e = a.binary(op, b);
    const auto f = e.evaluate(2);
    EXPECT_EQ(e.canonical().to_logic_matrix(2).to_truth_table(), f)
        << "op " << op;
  }
}

TEST(StpExpr, MinNumVars) {
  EXPECT_EQ(expr::constant(true).min_num_vars(), 0u);
  EXPECT_EQ(expr::var(3).min_num_vars(), 4u);
  EXPECT_EQ((expr::var(1) & expr::var(5)).min_num_vars(), 6u);
}

TEST(StpExpr, EvaluateRejectsTooFewVars) {
  EXPECT_THROW(expr::var(3).evaluate(2), std::invalid_argument);
}

TEST(StpExpr, ToStringRendersConnectives) {
  const auto e = (expr::var(0) & !expr::var(1)) ^ expr::var(2);
  EXPECT_EQ(e.to_string(), "((x0 & !x1) ^ x2)");
}

}  // namespace
