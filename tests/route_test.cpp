/// \file route_test.cpp
/// \brief The routing tier: ring, health machine, failover, degradation.
///
/// The ring and health tracker are tested as pure state machines (explicit
/// time points, no sleeping).  The router end-to-end tests run a real
/// 3-shard fleet of TCP daemons on ephemeral ports and drive the router
/// through scripted iostream sessions — the same `session_host` seam the
/// listeners use — so routing decisions, failover, and degraded-mode BUSY
/// replies are observable without any listener in front of the router.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "route/health.hpp"
#include "route/ring.hpp"
#include "route/router.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/tcp_socket_server.hpp"
#include "service/chain_io.hpp"
#include "tt/npn.hpp"
#include "tt/truth_table.hpp"
#include "util/failpoint.hpp"

namespace {

using stpes::route::backend_health;
using stpes::route::fnv1a64;
using stpes::route::hash_ring;
using stpes::route::health_tracker;
using stpes::route::router;
using stpes::route::router_options;
using stpes::server::server_options;
using stpes::server::synthesis_server;
using stpes::server::tcp_listen_spec;
using stpes::server::tcp_socket_server;
using stpes::tt::truth_table;

// ---- hash ring ----

TEST(Ring, HomeIsDeterministicAndPreferenceCoversAllBackendsOnce) {
  const hash_ring ring{{"a:1", "b:2", "c:3"}, 32};
  for (std::uint64_t key = 0; key < 200; ++key) {
    const auto h = fnv1a64(std::to_string(key));
    const auto home = ring.home(h);
    const auto pref = ring.preference(h);
    ASSERT_EQ(pref.size(), 3u);
    EXPECT_EQ(pref.front(), home);
    EXPECT_EQ(std::set<std::size_t>(pref.begin(), pref.end()).size(), 3u);
    // Determinism: ask again, same answer.
    EXPECT_EQ(ring.home(h), home);
    EXPECT_EQ(ring.preference(h), pref);
  }
}

TEST(Ring, KeysSpreadAcrossBackends) {
  const hash_ring ring{{"a:1", "b:2", "c:3"}, 64};
  std::vector<unsigned> hits(3, 0);
  for (std::uint64_t key = 0; key < 300; ++key) {
    ++hits[ring.home(fnv1a64("key" + std::to_string(key)))];
  }
  for (std::size_t b = 0; b < hits.size(); ++b) {
    EXPECT_GT(hits[b], 30u) << "backend " << b << " is starved";
  }
}

TEST(Ring, RemovingABackendOnlyMovesItsOwnKeys) {
  const hash_ring full{{"a:1", "b:2", "c:3"}, 64};
  const hash_ring reduced{{"a:1", "b:2"}, 64};
  for (std::uint64_t key = 0; key < 300; ++key) {
    const auto h = fnv1a64("key" + std::to_string(key));
    const auto home = full.home(h);
    if (home != 2) {
      // Consistent hashing's contract: keys not homed on the removed
      // backend keep their placement.
      EXPECT_EQ(reduced.home(h), home);
    }
  }
}

// ---- health tracker ----

TEST(Health, EjectsAtThresholdAndSitsOutProbation) {
  using clock = health_tracker::clock;
  const auto t0 = clock::now();
  health_tracker health{2, /*fail_threshold=*/3, /*probation_ms=*/1000};

  EXPECT_TRUE(health.attemptable(0, t0));
  health.record_failure(0, t0);
  health.record_failure(0, t0);
  EXPECT_TRUE(health.healthy(0)) << "below threshold: still healthy";
  health.record_failure(0, t0);
  EXPECT_FALSE(health.healthy(0));
  EXPECT_EQ(health.status(0).ejections, 1u);

  // Inside the probation window: untouchable.
  EXPECT_FALSE(health.attemptable(0, t0 + std::chrono::milliseconds(500)));
  // Window elapsed: probe-eligible (still marked down).
  EXPECT_TRUE(health.attemptable(0, t0 + std::chrono::milliseconds(1001)));
  EXPECT_FALSE(health.healthy(0));

  // The other backend never flinched.
  EXPECT_TRUE(health.healthy(1));
}

TEST(Health, SuccessReadmitsAndFailureRefreshesTheWindow) {
  using clock = health_tracker::clock;
  const auto t0 = clock::now();
  health_tracker health{1, 1, 1000};

  health.record_failure(0, t0);
  EXPECT_FALSE(health.healthy(0));

  // A failed probation trial at t0+1200 restarts the clock from there.
  health.record_failure(0, t0 + std::chrono::milliseconds(1200));
  EXPECT_FALSE(
      health.attemptable(0, t0 + std::chrono::milliseconds(2100)));
  EXPECT_TRUE(health.attemptable(0, t0 + std::chrono::milliseconds(2201)));

  health.record_success(0);
  EXPECT_TRUE(health.healthy(0));
  EXPECT_EQ(health.status(0).readmissions, 1u);
  EXPECT_EQ(health.status(0).consecutive_failures, 0u);
}

TEST(Health, RetryHintIsEarliestProbationExpiryFloored) {
  using clock = health_tracker::clock;
  const auto t0 = clock::now();
  health_tracker health{2, 1, 1000};

  // Anything attemptable => the floor.
  EXPECT_EQ(health.retry_hint_ms(50, t0), 50u);

  health.record_failure(0, t0);
  health.record_failure(1, t0 + std::chrono::milliseconds(400));
  // Both down at t0+500: backend 0 frees up at t0+1000 -> 500 ms away.
  EXPECT_EQ(health.retry_hint_ms(50, t0 + std::chrono::milliseconds(500)),
            500u);
  // Near expiry the computed hint dips below the floor; the floor wins.
  EXPECT_EQ(health.retry_hint_ms(50, t0 + std::chrono::milliseconds(990)),
            50u);
}

// ---- routing key ----

TEST(RouteKey, NpnClassmatesShareAKey) {
  const auto maj = truth_table::from_hex(3, "e8");
  const truth_table negated = ~maj;  // output negation: same NPN class
  stpes::server::synth_args a;
  a.function = maj;
  stpes::server::synth_args b;
  b.function = negated;
  EXPECT_EQ(router::request_key(a), router::request_key(b));

  // A different class keys differently.
  stpes::server::synth_args c;
  c.function = truth_table::from_hex(3, "80");
  EXPECT_NE(router::request_key(a), router::request_key(c));

  // Multi-output requests key on the raw list.
  stpes::server::synth_args m;
  m.functions = {maj, truth_table::from_hex(3, "96")};
  EXPECT_NE(router::request_key(m), router::request_key(a));
  stpes::server::synth_args m2 = m;
  EXPECT_EQ(router::request_key(m), router::request_key(m2));
}

// ---- router end to end ----

/// One TCP daemon of the test fleet, restartable on a pinned port.
struct shard {
  explicit shard(std::uint16_t port = 0) {
    server_options opts;
    opts.default_timeout_seconds = 60.0;
    opts.num_threads = 2;
    opts.drain_grace_seconds = 0.1;
    daemon = std::make_unique<synthesis_server>(opts);
    listener = std::make_unique<tcp_socket_server>(
        *daemon, tcp_listen_spec{"127.0.0.1", port});
    thread = std::thread{[this] { listener->run(); }};
  }

  ~shard() { stop(); }

  void stop() {
    if (thread.joinable()) {
      listener->stop();
      thread.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return listener->port(); }
  [[nodiscard]] std::string spec() const {
    return "127.0.0.1:" + std::to_string(port());
  }

  std::unique_ptr<synthesis_server> daemon;
  std::unique_ptr<tcp_socket_server> listener;
  std::thread thread;
};

router_options quick_router_options(const std::vector<std::string>& specs) {
  router_options opts;
  opts.backends = specs;
  opts.fail_threshold = 2;
  opts.probation_ms = 200;
  opts.probe_interval_ms = 0;  // tests drive probe_once() themselves
  opts.backend_policy.max_attempts = 2;
  opts.backend_policy.connect_timeout_ms = 500;
  opts.backend_policy.io_timeout_ms = 5000;
  opts.backend_policy.base_backoff_ms = 1;
  opts.backend_policy.max_backoff_ms = 4;
  opts.min_retry_hint_ms = 50;
  return opts;
}

std::string run_route_session(router& r, const std::string& input) {
  std::istringstream in{input};
  std::ostringstream out;
  r.serve(in, out);
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  return lines;
}

class Route : public ::testing::Test {
protected:
  void SetUp() override { std::signal(SIGPIPE, SIG_IGN); }
};

TEST_F(Route, SynthRoutesToABackendAndRelaysTheReply) {
  shard a, b, c;
  router r{quick_router_options({a.spec(), b.spec(), c.spec()})};
  const auto out =
      run_route_session(r, "PING\nSYNTH stp 3 e8\nBOGUS\nQUIT\n");
  const auto lines = split_lines(out);
  ASSERT_GE(lines.size(), 4u) << out;
  EXPECT_EQ(lines[0], "OK pong");
  EXPECT_EQ(lines[1].rfind("OK success ", 0), 0u) << lines[1];
  // The relayed chain is the backend's verbatim reply: it must simulate.
  const auto maj = truth_table::from_hex(3, "e8");
  EXPECT_EQ(stpes::service::parse_chain(lines[2]).simulate(), maj);
  EXPECT_EQ(r.counters().routed_ok, 1u);
  EXPECT_EQ(r.counters().parse_errors, 1u);  // BOGUS
}

TEST_F(Route, MalformedRequestsDieAtTheRouterNotTheBackend) {
  shard a;
  router r{quick_router_options({a.spec()})};
  const auto out = run_route_session(r, "SYNTH stp 99 e8\nQUIT\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out;
  EXPECT_EQ(r.counters().routed_ok, 0u);
  EXPECT_EQ(a.daemon->counters().commands, 0u)
      << "a malformed request must never reach a backend";
}

TEST_F(Route, SameClassAlwaysHitsTheSameShard) {
  shard a, b, c;
  router r{quick_router_options({a.spec(), b.spec(), c.spec()})};
  // Ten times the same class: exactly one backend sees traffic for it.
  std::string script;
  for (int i = 0; i < 10; ++i) {
    script += "SYNTH stp 3 e8\n";
  }
  script += "QUIT\n";
  run_route_session(r, script);
  unsigned backends_hit = 0;
  for (const shard* s : {&a, &b, &c}) {
    backends_hit += s->daemon->counters().commands > 0 ? 1 : 0;
  }
  EXPECT_EQ(backends_hit, 1u);
  EXPECT_EQ(r.counters().routed_ok, 10u);
}

TEST_F(Route, FailoverServesKeysOfADeadShard) {
  shard a, b, c;
  router r{quick_router_options({a.spec(), b.spec(), c.spec()})};

  // Route one request per 3-input class to spread across all shards.
  std::vector<std::string> hexes;
  for (unsigned v = 0; v < 256; v += 7) {
    std::ostringstream os;
    os << std::hex << (v < 16 ? "0" : "") << v;
    hexes.push_back(os.str());
  }
  std::string script;
  for (const auto& h : hexes) {
    script += "SYNTH stp 3 " + h + "\n";
  }
  script += "QUIT\n";
  run_route_session(r, script);
  EXPECT_EQ(r.counters().routed_ok, hexes.size());

  // Kill one shard; every key must still get an OK (ring failover).
  b.stop();
  const auto out = run_route_session(r, script);
  const auto lines = split_lines(out);
  unsigned oks = 0;
  for (const auto& line : lines) {
    oks += line.rfind("OK success ", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(oks, hexes.size()) << "every request must survive the kill";
  EXPECT_GT(r.counters().failovers, 0u);
  EXPECT_GT(r.counters().backend_failures, 0u);
}

TEST_F(Route, AllBackendsDownDegradesToBusyWithComputedHint) {
  shard a, b;
  auto opts = quick_router_options({a.spec(), b.spec()});
  opts.fail_threshold = 1;
  router r{opts};
  a.stop();
  b.stop();

  const auto out =
      run_route_session(r, "SYNTH stp 3 e8\nSYNTH stp 3 96\nQUIT\n");
  const auto lines = split_lines(out);
  ASSERT_GE(lines.size(), 2u) << out;
  // First request ejects both backends (it walks the whole ring); from
  // then on the router degrades instantly with a BUSY hint.
  EXPECT_EQ(lines[1].rfind("BUSY retry-after ", 0), 0u) << lines[1];
  const auto hint =
      std::stoul(lines[1].substr(std::string{"BUSY retry-after "}.size()));
  EXPECT_GE(hint, r.options().min_retry_hint_ms);
  EXPECT_LE(hint, r.options().probation_ms);
  EXPECT_GT(r.counters().degraded_busy, 0u);
}

TEST_F(Route, BatchDecomposesAndReassemblesInOrder) {
  shard a, b, c;
  router r{quick_router_options({a.spec(), b.spec(), c.spec()})};
  const std::vector<std::string> hexes{"e8", "96", "80", "06", "68"};
  std::string script = "BATCH\n";
  for (const auto& h : hexes) {
    script += "stp 3 " + h + "\n";
  }
  script += "END\nQUIT\n";
  const auto out = run_route_session(r, script);
  const auto lines = split_lines(out);
  ASSERT_GE(lines.size(), 1u + hexes.size());
  EXPECT_EQ(lines[0], "OK " + std::to_string(hexes.size()));
  std::size_t cursor = 1;
  for (std::size_t i = 0; i < hexes.size(); ++i) {
    const auto head = lines.at(cursor++);
    std::istringstream is{head};
    std::string kw, status;
    std::size_t index = 0;
    unsigned gates = 0;
    std::size_t num_chains = 0;
    ASSERT_TRUE(is >> kw >> index >> status >> gates >> num_chains) << head;
    EXPECT_EQ(kw, "RESULT");
    EXPECT_EQ(index, i) << "results must come back in request order";
    EXPECT_EQ(status, "success");
    ASSERT_GT(num_chains, 0u);
    const auto f = truth_table::from_hex(3, hexes[i]);
    for (std::size_t k = 0; k < num_chains; ++k) {
      EXPECT_EQ(stpes::service::parse_chain(lines.at(cursor++)).simulate(),
                f)
          << "cross-wired reply at index " << i;
    }
  }
  // At least two shards served parts of one batch.
  unsigned backends_hit = 0;
  for (const shard* s : {&a, &b, &c}) {
    backends_hit += s->daemon->counters().commands > 0 ? 1 : 0;
  }
  EXPECT_GE(backends_hit, 2u);
}

TEST_F(Route, ProbesDriveEjectionAndReadmission) {
  shard a;
  shard b;
  auto opts = quick_router_options({a.spec(), b.spec()});
  opts.fail_threshold = 2;
  opts.probation_ms = 100;
  router r{opts};

  r.probe_once();
  EXPECT_EQ(r.counters().probes_ok, 2u);
  EXPECT_TRUE(r.health().healthy(0));
  EXPECT_TRUE(r.health().healthy(1));

  const auto port = b.port();
  b.stop();
  r.probe_once();
  r.probe_once();
  EXPECT_FALSE(r.health().healthy(1)) << "two failed probes must eject";
  EXPECT_EQ(r.health().status(1).ejections, 1u);

  // Restart on the same port, wait out probation, probe: readmitted.
  shard revived{port};
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  r.probe_once();
  EXPECT_TRUE(r.health().healthy(1));
  EXPECT_EQ(r.health().status(1).readmissions, 1u);
}

TEST_F(Route, ProbeBlackholeFailpointEjectsLiveBackends) {
  if (!stpes::util::failpoints_compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = stpes::util::failpoint_registry::instance();
  registry.clear_all();
  shard a;
  auto opts = quick_router_options({a.spec()});
  opts.fail_threshold = 2;
  opts.probation_ms = 100;
  router r{opts};

  registry.set("route.probe", "always,errno=ECONNRESET");
  r.probe_once();
  r.probe_once();
  registry.clear_all();
  EXPECT_FALSE(r.health().healthy(0))
      << "blackholed probes must look like a dead backend";
  EXPECT_EQ(r.counters().probes_failed, 2u);

  // The daemon was alive all along: after probation one clean probe
  // readmits it.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  r.probe_once();
  EXPECT_TRUE(r.health().healthy(0));
}

TEST_F(Route, StatsExposeRoutingAndClientCounters) {
  shard a;
  router r{quick_router_options({a.spec()})};
  const auto out =
      run_route_session(r, "SYNTH stp 3 e8\nSTATS JSON\nQUIT\n");
  EXPECT_NE(out.find("\"routed_ok\":1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"failovers\":0"), std::string::npos);
  EXPECT_NE(out.find("\"reconnects\":"), std::string::npos);
  EXPECT_NE(out.find("\"state\":\"healthy\""), std::string::npos);
  const auto text = r.stats_text();
  EXPECT_NE(text.find("routed_ok"), std::string::npos);
  EXPECT_NE(text.find("backend.0"), std::string::npos);
}

TEST_F(Route, RouterRejectsNonRoutableVerbs) {
  shard a;
  router r{quick_router_options({a.spec()})};
  const auto out = run_route_session(r, "SWEEP /tmp/x.aig\nQUIT\n");
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out;
}

}  // namespace
