#include "workload/collections.hpp"

#include <gtest/gtest.h>

#include <set>

#include "tt/dsd.hpp"

namespace {

using stpes::tt::analyze_dsd;
using stpes::tt::dsd_kind;
using stpes::tt::truth_table;
using stpes::workload::fdsd_functions;
using stpes::workload::npn4_classes;
using stpes::workload::pdsd_functions;

TEST(Workload, Npn4Has222Classes) {
  const auto classes = npn4_classes();
  EXPECT_EQ(classes.size(), 222u);
  std::set<std::string> seen;
  for (const auto& f : classes) {
    EXPECT_EQ(f.num_vars(), 4u);
    EXPECT_TRUE(seen.insert(f.to_hex()).second);
  }
}

TEST(Workload, FdsdFunctionsAreFullyDsd) {
  for (const unsigned n : {4u, 6u, 8u}) {
    const auto functions = fdsd_functions(n, 25, /*seed=*/7);
    EXPECT_EQ(functions.size(), 25u);
    for (const auto& f : functions) {
      EXPECT_EQ(f.num_vars(), n);
      EXPECT_EQ(f.support_size(), n);
      const auto kind = analyze_dsd(f).kind;
      EXPECT_EQ(kind, dsd_kind::full) << f.to_hex();
    }
  }
}

TEST(Workload, PdsdFunctionsArePartial) {
  for (const unsigned n : {6u, 8u}) {
    const auto functions = pdsd_functions(n, 15, /*seed=*/11);
    EXPECT_EQ(functions.size(), 15u);
    for (const auto& f : functions) {
      EXPECT_EQ(f.num_vars(), n);
      EXPECT_EQ(f.support_size(), n);
      const auto analysis = analyze_dsd(f);
      EXPECT_EQ(analysis.kind, dsd_kind::partial) << f.to_hex();
      EXPECT_GE(analysis.residue_support, 3u);
    }
  }
}

TEST(Workload, GeneratorsAreDeterministic) {
  const auto a = fdsd_functions(6, 10, 42);
  const auto b = fdsd_functions(6, 10, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  const auto c = fdsd_functions(6, 10, 43);
  bool any_difference = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_difference |= !(a[i] == c[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Workload, FunctionsAreDistinct) {
  const auto functions = pdsd_functions(6, 30, 3);
  std::set<std::string> seen;
  for (const auto& f : functions) {
    EXPECT_TRUE(seen.insert(f.to_hex()).second);
  }
}

TEST(Workload, RandomPrimeFunctionIsPrime) {
  stpes::util::rng rng{5};
  for (int i = 0; i < 10; ++i) {
    const auto p = stpes::workload::random_prime_function(3, rng);
    EXPECT_TRUE(stpes::tt::is_prime(p));
    EXPECT_EQ(p.support_size(), 3u);
  }
  EXPECT_THROW(stpes::workload::random_prime_function(2, rng),
               std::invalid_argument);
}

TEST(Workload, ReadOnceTreeKeepsFullSupport) {
  stpes::util::rng rng{6};
  for (int i = 0; i < 20; ++i) {
    const auto f = stpes::workload::random_read_once_tree(6, rng);
    EXPECT_EQ(f.support_size(), 6u);
    EXPECT_TRUE(stpes::tt::is_fully_dsd(f));
  }
}

TEST(Workload, PdsdRejectsTooFewInputs) {
  EXPECT_THROW(pdsd_functions(3, 1, 0), std::invalid_argument);
}

}  // namespace
