#include "workload/collections.hpp"

#include <gtest/gtest.h>

#include <set>

#include "tt/dsd.hpp"

namespace {

using stpes::tt::analyze_dsd;
using stpes::tt::dsd_kind;
using stpes::tt::truth_table;
using stpes::workload::fdsd_functions;
using stpes::workload::npn4_classes;
using stpes::workload::pdsd_functions;

TEST(Workload, Npn4Has222Classes) {
  const auto classes = npn4_classes();
  EXPECT_EQ(classes.size(), 222u);
  std::set<std::string> seen;
  for (const auto& f : classes) {
    EXPECT_EQ(f.num_vars(), 4u);
    EXPECT_TRUE(seen.insert(f.to_hex()).second);
  }
}

TEST(Workload, FdsdFunctionsAreFullyDsd) {
  for (const unsigned n : {4u, 6u, 8u}) {
    const auto functions = fdsd_functions(n, 25, /*seed=*/7);
    EXPECT_EQ(functions.size(), 25u);
    for (const auto& f : functions) {
      EXPECT_EQ(f.num_vars(), n);
      EXPECT_EQ(f.support_size(), n);
      const auto kind = analyze_dsd(f).kind;
      EXPECT_EQ(kind, dsd_kind::full) << f.to_hex();
    }
  }
}

TEST(Workload, PdsdFunctionsArePartial) {
  for (const unsigned n : {6u, 8u}) {
    const auto functions = pdsd_functions(n, 15, /*seed=*/11);
    EXPECT_EQ(functions.size(), 15u);
    for (const auto& f : functions) {
      EXPECT_EQ(f.num_vars(), n);
      EXPECT_EQ(f.support_size(), n);
      const auto analysis = analyze_dsd(f);
      EXPECT_EQ(analysis.kind, dsd_kind::partial) << f.to_hex();
      EXPECT_GE(analysis.residue_support, 3u);
    }
  }
}

TEST(Workload, GeneratorsAreDeterministic) {
  const auto a = fdsd_functions(6, 10, 42);
  const auto b = fdsd_functions(6, 10, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  const auto c = fdsd_functions(6, 10, 43);
  bool any_difference = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_difference |= !(a[i] == c[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Workload, FunctionsAreDistinct) {
  const auto functions = pdsd_functions(6, 30, 3);
  std::set<std::string> seen;
  for (const auto& f : functions) {
    EXPECT_TRUE(seen.insert(f.to_hex()).second);
  }
}

TEST(Workload, RandomPrimeFunctionIsPrime) {
  stpes::util::rng rng{5};
  for (int i = 0; i < 10; ++i) {
    const auto p = stpes::workload::random_prime_function(3, rng);
    EXPECT_TRUE(stpes::tt::is_prime(p));
    EXPECT_EQ(p.support_size(), 3u);
  }
  EXPECT_THROW(stpes::workload::random_prime_function(2, rng),
               std::invalid_argument);
}

TEST(Workload, ReadOnceTreeKeepsFullSupport) {
  stpes::util::rng rng{6};
  for (int i = 0; i < 20; ++i) {
    const auto f = stpes::workload::random_read_once_tree(6, rng);
    EXPECT_EQ(f.support_size(), 6u);
    EXPECT_TRUE(stpes::tt::is_fully_dsd(f));
  }
}

TEST(Workload, PdsdRejectsTooFewInputs) {
  EXPECT_THROW(pdsd_functions(3, 1, 0), std::invalid_argument);
}

TEST(Workload, MaddCollectionMatchesItsArithmeticDefinitions) {
  const auto instances = stpes::workload::madd_collection();
  ASSERT_EQ(instances.size(), 5u);
  for (const auto& instance : instances) {
    ASSERT_GE(instance.functions.size(), 2u);
    ASSERT_LE(instance.functions.size(), 3u);
    EXPECT_LE(instance.functions.front().num_vars(), 4u);
    for (const auto& f : instance.functions) {
      EXPECT_EQ(f.num_vars(), instance.functions.front().num_vars());
    }
  }

  // The full adder's outputs are the known (sum, carry) pair.
  EXPECT_EQ(instances[1].name, "full-adder");
  EXPECT_EQ(instances[1].functions[0], truth_table(3, 0x96));
  EXPECT_EQ(instances[1].functions[1], truth_table(3, 0xE8));

  // Comparator outputs are one-hot over every minterm; equality holds
  // exactly on the diagonal.
  const auto& cmp2 = instances[3];
  EXPECT_EQ(cmp2.name, "cmp2");
  const auto& lt = cmp2.functions[0];
  const auto& eq = cmp2.functions[1];
  const auto& gt = cmp2.functions[2];
  for (std::uint64_t t = 0; t < lt.num_bits(); ++t) {
    EXPECT_EQ(static_cast<int>(lt.get_bit(t)) + eq.get_bit(t) +
                  gt.get_bit(t),
              1);
    const unsigned a = static_cast<unsigned>(t & 3);
    const unsigned b = static_cast<unsigned>((t >> 2) & 3);
    EXPECT_EQ(eq.get_bit(t), a == b);
  }

  // The 2-bit adder reconstructs a + b from its output bits.
  const auto& add2 = instances[4];
  EXPECT_EQ(add2.name, "add2");
  for (std::uint64_t t = 0; t < add2.functions[0].num_bits(); ++t) {
    const unsigned sum = static_cast<unsigned>(t & 3) +
                         static_cast<unsigned>((t >> 2) & 3);
    unsigned decoded = 0;
    for (unsigned k = 0; k < 3; ++k) {
      decoded |= static_cast<unsigned>(add2.functions[k].get_bit(t)) << k;
    }
    EXPECT_EQ(decoded, sum);
  }

  // Deterministic: a second call reproduces the collection exactly.
  const auto again = stpes::workload::madd_collection();
  ASSERT_EQ(again.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(again[i].name, instances[i].name);
    EXPECT_EQ(again[i].functions, instances[i].functions);
  }
}

}  // namespace
