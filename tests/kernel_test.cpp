// Vector-kernel tier unit suite: the packed/aligned word_storage layout
// the tiers rely on, the runtime dispatch and override logic, and a
// per-op cross-check of every tier the build + CPU provide against the
// scalar reference on randomized buffers.

#include "tt/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace {

using stpes::tt::truth_table;
using stpes::tt::word_storage;
using stpes::tt::kernels::active;
using stpes::tt::kernels::active_tier;
using stpes::tt::kernels::force_tier;
using stpes::tt::kernels::kernel_ops;
using stpes::tt::kernels::kernel_tier;
using stpes::tt::kernels::ops_for;
using stpes::tt::kernels::parse_tier;
using stpes::tt::kernels::scalar_ops;
using stpes::tt::kernels::tier_available;
using stpes::tt::kernels::tier_name;
using stpes::util::rng;

std::vector<std::uint64_t> random_words(rng& r, std::size_t n) {
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) {
    w = r.next_u64();
  }
  return out;
}

std::vector<kernel_tier> available_tiers() {
  std::vector<kernel_tier> tiers{kernel_tier::scalar};
  if (tier_available(kernel_tier::avx2)) {
    tiers.push_back(kernel_tier::avx2);
  }
  if (tier_available(kernel_tier::avx512)) {
    tiers.push_back(kernel_tier::avx512);
  }
  return tiers;
}

// ---------------------------------------------------------------------------
// word_storage layout: the contract the SIMD loads depend on.

TEST(WordStorage, StaysTwoAlignedSlots) {
  // Duplicates the header's static_asserts as a runtime statement of
  // intent: the padding of this struct is copied on the hottest path.
  EXPECT_EQ(sizeof(word_storage), 64u);
  EXPECT_GE(alignof(word_storage), 32u);
}

TEST(WordStorage, InlineWordsAreThirtyTwoByteAligned) {
  // Inline storage (<= 8 variables) must be vector-load aligned wherever
  // the object lands: on the stack, in a vector, after moves.
  truth_table on_stack{8};
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(on_stack.words().data()) % 32,
            0u);
  std::vector<truth_table> moved;
  for (unsigned n = 0; n <= 8; ++n) {
    moved.push_back(truth_table{n});
  }
  for (const auto& t : moved) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.words().data()) % 32, 0u);
  }
}

TEST(WordStorage, AuxWordRoundTripsAndIsIgnoredByEquality) {
  word_storage a{2};
  word_storage b{2};
  a.set_aux(7);
  b.set_aux(9);
  EXPECT_EQ(a.aux(), 7u);
  EXPECT_TRUE(a == b);  // aux is owner metadata, not content
  const word_storage copy = a;
  EXPECT_EQ(copy.aux(), 7u);
}

TEST(WordStorage, TruthTableKeepsVariableCountInAux) {
  for (unsigned n = 0; n <= 10; ++n) {
    const truth_table f{n};
    EXPECT_EQ(f.num_vars(), n);
    EXPECT_EQ(f.words().aux(), n);
    EXPECT_EQ(f.num_bits(), std::uint64_t{1} << n);
  }
}

TEST(WordStorage, HeapSpillKeepsCountAndContents) {
  word_storage big{16};  // 10 variables: past the inline buffer
  EXPECT_EQ(big.size(), 16u);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = i * 0x0101010101010101ull;
  }
  const word_storage copy = big;
  EXPECT_TRUE(copy == big);
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.

TEST(KernelDispatch, ScalarTierIsAlwaysAvailable) {
  EXPECT_TRUE(tier_available(kernel_tier::scalar));
  EXPECT_EQ(scalar_ops().tier, kernel_tier::scalar);
}

TEST(KernelDispatch, ParseTierAcceptsKnownNamesOnly) {
  EXPECT_EQ(parse_tier("scalar", kernel_tier::avx2), kernel_tier::scalar);
  EXPECT_EQ(parse_tier("avx2", kernel_tier::scalar), kernel_tier::avx2);
  EXPECT_EQ(parse_tier("avx512", kernel_tier::scalar), kernel_tier::avx512);
  EXPECT_EQ(parse_tier(nullptr, kernel_tier::avx2), kernel_tier::avx2);
  EXPECT_EQ(parse_tier("", kernel_tier::scalar), kernel_tier::scalar);
  EXPECT_EQ(parse_tier("AVX2", kernel_tier::scalar), kernel_tier::scalar);
  EXPECT_EQ(parse_tier("sse2", kernel_tier::avx2), kernel_tier::avx2);
}

TEST(KernelDispatch, OpsForReportsItsOwnTierOrFallsBackToScalar) {
  for (const auto t :
       {kernel_tier::scalar, kernel_tier::avx2, kernel_tier::avx512}) {
    const kernel_ops& ops = ops_for(t);
    if (tier_available(t)) {
      EXPECT_EQ(ops.tier, t) << tier_name(t);
    } else {
      EXPECT_EQ(ops.tier, kernel_tier::scalar) << tier_name(t);
    }
    // Every slot of every table must be callable.
    EXPECT_NE(ops.vec_and, nullptr);
    EXPECT_NE(ops.vec_or, nullptr);
    EXPECT_NE(ops.vec_xor, nullptr);
    EXPECT_NE(ops.vec_andnot, nullptr);
    EXPECT_NE(ops.vec_not_mask, nullptr);
    EXPECT_NE(ops.any_and3, nullptr);
    EXPECT_NE(ops.accepts, nullptr);
    EXPECT_NE(ops.isf_conflict, nullptr);
    EXPECT_NE(ops.cofactor_split, nullptr);
    EXPECT_NE(ops.smooth_var_w1_masked, nullptr);
    EXPECT_NE(ops.and3_nonzero_w1, nullptr);
    EXPECT_NE(ops.reverse_table, nullptr);
  }
}

TEST(KernelDispatch, ForceTierRoundTrips) {
  const kernel_tier before = active_tier();
  const kernel_tier prev = force_tier(kernel_tier::scalar);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(active_tier(), kernel_tier::scalar);
  EXPECT_EQ(active().tier, kernel_tier::scalar);
  force_tier(before);
  EXPECT_EQ(active_tier(), before);
}

TEST(KernelDispatch, TierNamesAreStable) {
  EXPECT_STREQ(tier_name(kernel_tier::scalar), "scalar");
  EXPECT_STREQ(tier_name(kernel_tier::avx2), "avx2");
  EXPECT_STREQ(tier_name(kernel_tier::avx512), "avx512");
}

// ---------------------------------------------------------------------------
// Per-op equivalence: every available tier against the scalar reference.

class KernelTierEquivalence : public ::testing::TestWithParam<kernel_tier> {
protected:
  const kernel_ops& ref_ = scalar_ops();
  const kernel_ops& ops_ = ops_for(GetParam());
};

constexpr std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33};

TEST_P(KernelTierEquivalence, BooleanConnectives) {
  rng r{static_cast<std::uint64_t>(GetParam()) * 977 + 1};
  for (const std::size_t n : kSizes) {
    const auto a = random_words(r, n);
    const auto b = random_words(r, n);
    std::vector<std::uint64_t> want(n);
    std::vector<std::uint64_t> got(n);

    ref_.vec_and(want.data(), a.data(), b.data(), n);
    ops_.vec_and(got.data(), a.data(), b.data(), n);
    EXPECT_EQ(want, got) << "and n=" << n;

    ref_.vec_or(want.data(), a.data(), b.data(), n);
    ops_.vec_or(got.data(), a.data(), b.data(), n);
    EXPECT_EQ(want, got) << "or n=" << n;

    ref_.vec_xor(want.data(), a.data(), b.data(), n);
    ops_.vec_xor(got.data(), a.data(), b.data(), n);
    EXPECT_EQ(want, got) << "xor n=" << n;

    ref_.vec_andnot(want.data(), a.data(), b.data(), n);
    ops_.vec_andnot(got.data(), a.data(), b.data(), n);
    EXPECT_EQ(want, got) << "andnot n=" << n;

    // Aliasing dst == a is allowed by the contract.
    want = a;
    ref_.vec_xor(want.data(), want.data(), b.data(), n);
    got = a;
    ops_.vec_xor(got.data(), got.data(), b.data(), n);
    EXPECT_EQ(want, got) << "aliased xor n=" << n;

    for (const std::uint64_t mask :
         {~std::uint64_t{0}, std::uint64_t{0xff}, std::uint64_t{1}}) {
      ref_.vec_not_mask(want.data(), a.data(), n, mask);
      ops_.vec_not_mask(got.data(), a.data(), n, mask);
      EXPECT_EQ(want, got) << "not_mask n=" << n << " mask=" << mask;
    }
  }
}

TEST_P(KernelTierEquivalence, Predicates) {
  rng r{static_cast<std::uint64_t>(GetParam()) * 977 + 2};
  for (const std::size_t n : kSizes) {
    for (int round = 0; round < 32; ++round) {
      auto a = random_words(r, n);
      auto b = random_words(r, n);
      auto c = random_words(r, n);
      // Sparsify so both predicate outcomes actually occur.
      for (auto& w : c) {
        w &= r.next_u64() & r.next_u64() & r.next_u64();
      }
      EXPECT_EQ(ref_.any_and3(a.data(), b.data(), c.data(), n),
                ops_.any_and3(a.data(), b.data(), c.data(), n))
          << "any_and3 n=" << n;

      // accepts: exercise the true case (on = cand & care) and a perturbed
      // false case.
      std::vector<std::uint64_t> on(n);
      for (std::size_t i = 0; i < n; ++i) {
        on[i] = a[i] & b[i];
      }
      EXPECT_TRUE(ops_.accepts(a.data(), b.data(), on.data(), n));
      on[r.next_u64() % n] ^= r.next_u64();
      EXPECT_EQ(ref_.accepts(a.data(), b.data(), on.data(), n),
                ops_.accepts(a.data(), b.data(), on.data(), n))
          << "accepts n=" << n;

      const auto a_care = random_words(r, n);
      const auto b_care = random_words(r, n);
      EXPECT_EQ(
          ref_.isf_conflict(a.data(), b.data(), a_care.data(), b_care.data(),
                            n),
          ops_.isf_conflict(a.data(), b.data(), a_care.data(), b_care.data(),
                            n))
          << "isf_conflict n=" << n;
      // Compatible pair: b agrees with a wherever both care.
      auto b_on = a;
      EXPECT_FALSE(ops_.isf_conflict(a.data(), b_on.data(), a_care.data(),
                                     b_care.data(), n));
    }
  }
}

TEST_P(KernelTierEquivalence, CofactorSplitMatchesTruthTable) {
  rng r{static_cast<std::uint64_t>(GetParam()) * 977 + 3};
  for (unsigned num_vars = 6; num_vars <= 9; ++num_vars) {
    const std::size_t n = std::size_t{1} << (num_vars - 6);
    const auto words = random_words(r, n);
    const auto f = truth_table::from_words(num_vars, words.data(), n);
    for (unsigned var = 0; var < 6; ++var) {
      std::vector<std::uint64_t> lo(n);
      std::vector<std::uint64_t> hi(n);
      ops_.cofactor_split(f.words().data(), lo.data(), hi.data(), n, var);
      EXPECT_EQ(truth_table::from_words(num_vars, lo.data(), n),
                f.cofactor0(var))
          << "n=" << num_vars << " var=" << var;
      EXPECT_EQ(truth_table::from_words(num_vars, hi.data(), n),
                f.cofactor1(var))
          << "n=" << num_vars << " var=" << var;
    }
  }
}

TEST_P(KernelTierEquivalence, SmoothBatchMatchesTruthTable) {
  rng r{static_cast<std::uint64_t>(GetParam()) * 977 + 4};
  // Deliberately not a multiple of any vector width.
  constexpr std::size_t kLanes = 37;
  for (unsigned var = 0; var < 6; ++var) {
    auto lanes = random_words(r, kLanes);
    const auto original = lanes;
    std::vector<std::uint8_t> select(kLanes);
    for (auto& s : select) {
      s = (r.next_u64() & 1) != 0 ? 1 : 0;
    }
    ops_.smooth_var_w1_masked(lanes.data(), select.data(), kLanes, var);
    for (std::size_t i = 0; i < kLanes; ++i) {
      if (select[i] == 0) {
        EXPECT_EQ(lanes[i], original[i]) << "lane " << i << " var " << var;
        continue;
      }
      const auto f = truth_table::from_words(6, &original[i], 1);
      EXPECT_EQ(lanes[i], f.smooth(var).words()[0])
          << "lane " << i << " var " << var;
    }
  }
}

TEST_P(KernelTierEquivalence, BatchedAnd3Verdicts) {
  rng r{static_cast<std::uint64_t>(GetParam()) * 977 + 5};
  constexpr std::size_t kLanes = 41;
  const auto a = random_words(r, kLanes);
  const auto b = random_words(r, kLanes);
  auto c = random_words(r, kLanes);
  for (auto& w : c) {
    w &= r.next_u64() & r.next_u64();  // mix zero and non-zero verdicts
  }
  std::vector<std::uint8_t> want(kLanes, 0xcc);
  std::vector<std::uint8_t> got(kLanes, 0xcc);
  ref_.and3_nonzero_w1(a.data(), b.data(), c.data(), kLanes, want.data());
  ops_.and3_nonzero_w1(a.data(), b.data(), c.data(), kLanes, got.data());
  EXPECT_EQ(want, got);
  for (std::size_t i = 0; i < kLanes; ++i) {
    EXPECT_EQ(got[i], (a[i] & b[i] & c[i]) != 0 ? 1 : 0) << "lane " << i;
  }
}

TEST_P(KernelTierEquivalence, ReverseTableIsBitReversal) {
  rng r{static_cast<std::uint64_t>(GetParam()) * 977 + 6};
  for (unsigned num_vars = 0; num_vars <= 9; ++num_vars) {
    const std::size_t n =
        num_vars < 6 ? 1 : (std::size_t{1} << (num_vars - 6));
    const auto words = random_words(r, n);
    const auto f = truth_table::from_words(num_vars, words.data(), n);
    std::vector<std::uint64_t> dst(n, 0xdeadbeefdeadbeefull);
    ops_.reverse_table(dst.data(), f.words().data(), num_vars);
    const auto rev = truth_table::from_words(num_vars, dst.data(), n);
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      ASSERT_EQ(rev.get_bit(t), f.get_bit(f.num_bits() - 1 - t))
          << "num_vars=" << num_vars << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AvailableTiers, KernelTierEquivalence,
    ::testing::ValuesIn(available_tiers()),
    [](const ::testing::TestParamInfo<kernel_tier>& info) {
      return tier_name(info.param);
    });

}  // namespace
