#include "chain/transform.hpp"

#include <gtest/gtest.h>

#include "core/npn_cache.hpp"
#include "util/rng.hpp"

namespace {

using stpes::chain::apply_inverse_npn_to_chain;
using stpes::chain::boolean_chain;
using stpes::chain::to_blif;
using stpes::chain::to_verilog;
using stpes::tt::apply_npn_transform;
using stpes::tt::npn_transform;
using stpes::tt::truth_table;

boolean_chain example7_chain() {
  boolean_chain c{4};
  const auto x4 = c.add_step(0x8, 0, 1);
  const auto x5 = c.add_step(0x6, 2, 3);
  c.set_output(c.add_step(0xE, x4, x5));
  return c;
}

TEST(ChainTransform, IdentityTransformIsNoOp) {
  const auto c = example7_chain();
  const npn_transform identity{{0, 1, 2, 3}, 0, false};
  EXPECT_EQ(apply_inverse_npn_to_chain(c, identity).simulate(),
            c.simulate());
}

TEST(ChainTransform, OutputNegation) {
  const auto c = example7_chain();
  const npn_transform t{{0, 1, 2, 3}, 0, true};
  EXPECT_EQ(apply_inverse_npn_to_chain(c, t).simulate(), ~c.simulate());
}

TEST(ChainTransform, RoundTripOnRandomTransforms) {
  // chain computes g = apply(f, T); the inverse-applied chain must compute
  // f for every T in the group.
  stpes::util::rng rng{55};
  const auto transforms = stpes::tt::all_npn_transforms(4);
  const auto g_chain = example7_chain();
  const auto g = g_chain.simulate();
  for (int iteration = 0; iteration < 40; ++iteration) {
    const auto& t = transforms[rng.next_below(transforms.size())];
    // Find f such that apply(f, t) == g: apply the inverse... easier:
    // pick f random-equivalent: f = apply(g, t_inv)?  Instead use the
    // definitionally correct direction: for any f with g==apply(f,t), the
    // rewritten chain computes f.  Construct f by inverting on tables:
    // search the orbit for a member m with apply(m, t) == g.
    truth_table f = g;
    bool found = false;
    for (const auto& candidate_t : transforms) {
      const auto candidate = apply_npn_transform(g, candidate_t);
      if (apply_npn_transform(candidate, t) == g) {
        f = candidate;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
    const auto f_chain = apply_inverse_npn_to_chain(g_chain, t);
    EXPECT_EQ(f_chain.simulate(), f);
    EXPECT_EQ(f_chain.num_steps(), g_chain.num_steps());
  }
}

TEST(ChainTransform, LiteralOutputChains) {
  boolean_chain c{3};
  c.set_output(1, /*complemented=*/false);
  const npn_transform t{{2, 0, 1}, 0b010, true};
  const auto rewritten = apply_inverse_npn_to_chain(c, t);
  // g(x) = f(y), y_{perm[i]} = x_i ^ neg_i; g = x1 here, so
  // f(y) = ~(y_{perm[1]} ^ neg_1) with output negation.
  const auto g = apply_npn_transform(rewritten.simulate(), t);
  EXPECT_EQ(g, c.simulate());
}

TEST(ChainTransform, EveryOrbitMemberReachable) {
  // Exhaustive: rewrite the 0x8ff8 chain through every group element and
  // check the defining equation apply(f_chain, T) == g.
  const auto g_chain = example7_chain();
  const auto g = g_chain.simulate();
  for (const auto& t : stpes::tt::all_npn_transforms(4)) {
    const auto f_chain = apply_inverse_npn_to_chain(g_chain, t);
    EXPECT_EQ(apply_npn_transform(f_chain.simulate(), t), g);
  }
}

TEST(ChainExport, BlifContainsAllSections) {
  const auto blif = to_blif(example7_chain(), "ex7");
  EXPECT_NE(blif.find(".model ex7"), std::string::npos);
  EXPECT_NE(blif.find(".inputs x0 x1 x2 x3"), std::string::npos);
  EXPECT_NE(blif.find(".outputs f"), std::string::npos);
  EXPECT_NE(blif.find(".names x0 x1 x4"), std::string::npos);
  EXPECT_NE(blif.find("11 1"), std::string::npos);  // AND cube
  EXPECT_NE(blif.find(".end"), std::string::npos);
}

TEST(ChainExport, BlifComplementedOutput) {
  auto c = example7_chain();
  c.set_output(c.output(), true);
  EXPECT_NE(to_blif(c).find("0 1"), std::string::npos);
}

TEST(ChainExport, VerilogStructure) {
  const auto verilog = to_verilog(example7_chain(), "ex7");
  EXPECT_NE(verilog.find("module ex7("), std::string::npos);
  EXPECT_NE(verilog.find("input x0;"), std::string::npos);
  EXPECT_NE(verilog.find("assign x4"), std::string::npos);
  EXPECT_NE(verilog.find("assign f = x6;"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST(NpnCache, ServesWholeOrbitFromOneSynthesis) {
  stpes::core::npn_cached_synthesizer cache{stpes::core::engine::stp, 30.0};
  const auto f = truth_table::from_hex(4, "0x8ff8");
  const auto r1 = cache.synthesize(f);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(cache.stats().misses, 1u);

  // Every orbit member must come from the cache and simulate correctly.
  const auto transforms = stpes::tt::all_npn_transforms(4);
  stpes::util::rng rng{77};
  for (int i = 0; i < 10; ++i) {
    const auto member = apply_npn_transform(
        f, transforms[rng.next_below(transforms.size())]);
    const auto r = cache.synthesize(member);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.optimum_gates, r1.optimum_gates);
    for (const auto& c : r.chains) {
      EXPECT_EQ(c.simulate(), member);
    }
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 10u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NpnCache, DistinctClassesMissSeparately) {
  stpes::core::npn_cached_synthesizer cache{stpes::core::engine::stp, 30.0};
  ASSERT_TRUE(cache.synthesize(truth_table::from_hex(4, "0x8ff8")).ok());
  ASSERT_TRUE(cache.synthesize(truth_table(4, 0x8888)).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(NpnCache, LargeFunctionsBypass) {
  stpes::core::npn_cached_synthesizer cache{stpes::core::engine::stp, 30.0};
  // 6-input XOR: n > 5 bypasses canonization.
  auto f = truth_table::nth_var(6, 0);
  for (unsigned v = 1; v < 6; ++v) {
    f = f ^ truth_table::nth_var(6, v);
  }
  const auto r = cache.synthesize(f);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cache.stats().uncached, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
