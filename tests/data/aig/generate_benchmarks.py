#!/usr/bin/env python3
"""Regenerates the vendored AIGER sweep benchmarks and their MANIFEST.

The circuits are synthetic but purpose-built for SAT sweeping: each one
computes the same function through two *structurally different*
decompositions (structural hashing cannot collapse them; only an
equivalence proof can), stays within 4 inputs and a few dozen AND gates so
the circuit-AllSAT equivalence check in the tests is instant, and is
committed to the repository so CI never needs the network.

MANIFEST lines are `<crc32-hex> <bytes> <name>`, sorted by name; the CRC is
zlib.crc32, which matches `stpes::util::crc32` bit for bit.

Run from anywhere: paths are relative to this script's directory.
"""

import zlib
from pathlib import Path

HERE = Path(__file__).resolve().parent


class Aig:
    """Minimal AIG builder with AIGER literal numbering (2*var + c)."""

    def __init__(self, num_inputs):
        self.n = num_inputs
        self.ands = []  # (lhs, rhs0, rhs1), lhs implicit ascending
        self.outputs = []
        self.strash = {}

    def inp(self, i):
        return 2 * (i + 1)

    def AND(self, a, b):
        if a < b:
            a, b = b, a
        key = (a, b)
        if key in self.strash:
            return self.strash[key]
        var = self.n + len(self.ands) + 1
        self.ands.append((2 * var, a, b))
        self.strash[key] = 2 * var
        return 2 * var

    def OR(self, a, b):
        return self.AND(a ^ 1, b ^ 1) ^ 1

    def XOR(self, a, b):
        return self.OR(self.AND(a, b ^ 1), self.AND(a ^ 1, b))

    def MUX(self, s, t, e):  # s ? t : e
        return self.OR(self.AND(s, t), self.AND(s ^ 1, e))

    def out(self, lit):
        self.outputs.append(lit)


def ascii_bytes(g):
    m = g.n + len(g.ands)
    lines = [f"aag {m} {g.n} 0 {len(g.outputs)} {len(g.ands)}"]
    lines += [str(g.inp(i)) for i in range(g.n)]
    lines += [str(o) for o in g.outputs]
    lines += [f"{lhs} {a} {b}" for lhs, a, b in g.ands]
    return ("\n".join(lines) + "\n").encode()


def binary_bytes(g):
    m = g.n + len(g.ands)
    out = bytearray(
        f"aig {m} {g.n} 0 {len(g.outputs)} {len(g.ands)}\n".encode())
    for o in g.outputs:
        out += f"{o}\n".encode()
    for lhs, a, b in g.ands:
        for delta in (lhs - a, a - b):  # a >= b by construction
            while True:
                byte = delta & 0x7F
                delta >>= 7
                if delta:
                    out.append(byte | 0x80)
                else:
                    out.append(byte)
                    break
    return bytes(out)


def xor_two_ways():
    # XOR as OR-of-minterms vs. complement of XNOR's minterm OR.  The two
    # internal nodes are equivalent up to phase (n_xnor == !n_xor), so this
    # also exercises phase-normalized classes.
    g = Aig(2)
    a, b = g.inp(0), g.inp(1)
    xor_a = g.OR(g.AND(a, b ^ 1), g.AND(a ^ 1, b))
    xor_b = g.AND(g.AND(a, b) ^ 1, g.AND(a ^ 1, b ^ 1) ^ 1)
    g.out(xor_a)
    g.out(xor_b)
    return g


def maj3_two_ways():
    # Majority as OR of pairs vs. (a & b) | (c & (a ^ b)).
    g = Aig(3)
    a, b, c = g.inp(0), g.inp(1), g.inp(2)
    maj_a = g.OR(g.OR(g.AND(a, b), g.AND(b, c)), g.AND(a, c))
    maj_b = g.OR(g.AND(a, b), g.AND(c, g.XOR(a, b)))
    g.out(maj_a)
    g.out(maj_b)
    return g


def mux_consensus():
    # A 2:1 mux vs. the same mux with its redundant consensus term.
    g = Aig(3)
    s, a, b = g.inp(0), g.inp(1), g.inp(2)
    mux = g.OR(g.AND(s, a), g.AND(s ^ 1, b))
    with_consensus = g.OR(mux, g.AND(a, b))
    g.out(mux)
    g.out(with_consensus)
    return g


def const_nodes():
    # z = (a & b) & (a & !b) is semantically constant false but
    # structurally three live AND gates; c | z must sweep to plain c and
    # !z to constant true.
    g = Aig(3)
    a, b, c = g.inp(0), g.inp(1), g.inp(2)
    z = g.AND(g.AND(a, b), g.AND(a, b ^ 1))
    g.out(g.OR(c, z))
    g.out(z ^ 1)
    return g


def ite_chain():
    # ITE(s, a, ITE(s, b, c)) == ITE(s, a, c): the nested mux is redundant
    # under the outer select.
    g = Aig(4)
    s, a, b, c = g.inp(0), g.inp(1), g.inp(2), g.inp(3)
    nested = g.MUX(s, a, g.MUX(s, b, c))
    flat = g.MUX(s, a, c)
    g.out(nested)
    g.out(flat)
    return g


def parity4_two_ways():
    # 4-input parity as a balanced tree vs. a linear chain (the a ^ b leaf
    # is shared; everything above differs).  Vendored in *binary* AIGER.
    g = Aig(4)
    a, b, c, d = (g.inp(i) for i in range(4))
    tree = g.XOR(g.XOR(a, b), g.XOR(c, d))
    chain = g.XOR(g.XOR(g.XOR(a, b), c), d)
    g.out(tree)
    g.out(chain)
    return g


BENCHMARKS = [
    ("xor_two_ways.aag", ascii_bytes, xor_two_ways),
    ("maj3_two_ways.aag", ascii_bytes, maj3_two_ways),
    ("mux_consensus.aag", ascii_bytes, mux_consensus),
    ("const_nodes.aag", ascii_bytes, const_nodes),
    ("ite_chain.aag", ascii_bytes, ite_chain),
    ("parity4_two_ways.aig", binary_bytes, parity4_two_ways),
]


def main():
    manifest = []
    for name, encode, build in BENCHMARKS:
        data = encode(build())
        (HERE / name).write_bytes(data)
        manifest.append(f"{zlib.crc32(data):08x} {len(data)} {name}")
        print(f"wrote {name}: {len(data)} bytes")
    manifest.sort(key=lambda line: line.split()[2])
    (HERE / "MANIFEST").write_text("\n".join(manifest) + "\n")
    print(f"wrote MANIFEST ({len(manifest)} entries)")


if __name__ == "__main__":
    main()
